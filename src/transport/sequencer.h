/// \file
/// Per-stream sequencing: the correctness layer that makes a faulty network
/// look per-stream FIFO and exactly-once to every receiver.
///
/// A *stream* is one (from address, to address) pair — e.g. worker 2's
/// layer-3 syncer pushing to shard (0, 1). On a fault-free bus each stream
/// is trivially FIFO and duplicate-free (one sender thread, one queue); the
/// fault fabric breaks both properties, and this pair of classes restores
/// them:
///
///   * StreamSequencer (sender side) stamps each message with the stream's
///     next sequence number at Send() time.
///   * ReorderBuffer (receiver side, in front of the mailbox) releases
///     messages to the mailbox strictly in sequence order: duplicates
///     (seq already released, or already buffered) are dropped, and gaps
///     are bridged by buffering early arrivals until the missing seq lands
///     (the link layer retransmits drops, so every gap eventually fills).
///
/// Invariant (docs/FAULT_TOLERANCE.md): under any mix of duplication,
/// reordering and loss-with-retransmit, the message stream a consumer pops
/// per stream is byte-identical to the stream the sender pushed — which is
/// why chaos trajectories are bitwise identical to clean ones.
#ifndef POSEIDON_SRC_TRANSPORT_SEQUENCER_H_
#define POSEIDON_SRC_TRANSPORT_SEQUENCER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/stats/fault_counters.h"
#include "src/transport/message.h"

namespace poseidon {

/// Key identifying one unidirectional stream.
struct StreamKey {
  Address from;
  Address to;

  bool operator==(const StreamKey& other) const {
    return from == other.from && to == other.to;
  }
};

struct StreamKeyHash {
  size_t operator()(const StreamKey& key) const {
    AddressHash hash;
    return hash(key.from) * 1000003u + hash(key.to);
  }
};

/// Sender side: hands out consecutive sequence numbers per stream.
/// Thread-safe (senders on different threads may share a stream only through
/// the bus lock, but cheap to make safe outright).
class StreamSequencer {
 public:
  /// Returns the next sequence number (0-based) for `from -> to`.
  int64_t NextSeq(const Address& from, const Address& to);

 private:
  std::mutex mutex_;
  std::unordered_map<StreamKey, int64_t, StreamKeyHash> next_;
};

/// Receiver side: per-stream dedup and in-order release.
///
/// Admit() is called with every sequenced message the moment it would be
/// pushed to a mailbox. It returns the (possibly empty) run of messages that
/// are now in order and must be pushed, in sequence order. Unsequenced
/// messages (seq < 0) bypass the buffer entirely.
class ReorderBuffer {
 public:
  /// `max_buffered` bounds the per-stream holdback (a run further out of
  /// order than this indicates a protocol bug, not network weather).
  explicit ReorderBuffer(FaultCounters* counters, int max_buffered = 4096)
      : counters_(counters), max_buffered_(max_buffered) {}

  /// Feeds one arrival; appends every releasable message to `out`.
  void Admit(Message message, std::vector<Message>* out);

  /// Messages currently parked across all streams (tests).
  int64_t buffered() const;

 private:
  struct StreamState {
    int64_t next_expected = 0;
    std::map<int64_t, Message> parked;  // seq -> message, seq > next_expected
  };

  FaultCounters* counters_;
  const int max_buffered_;
  mutable std::mutex mutex_;
  std::unordered_map<StreamKey, StreamState, StreamKeyHash> streams_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_SEQUENCER_H_

// Property tests for the wire-codec registry: random tensors through each
// Codec's encode -> wire -> decode, checking bit-exactness (raw floats), the
// error-feedback residual invariant and reference-decoder equality (1-bit),
// and exact rank-k reconstruction (sufficient factors) — plus fuzzed
// truncated/corrupt frames, which must come back as Status, never a crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/simd/quant.h"
#include "src/tensor/ops.h"
#include "src/transport/codec.h"

namespace poseidon {
namespace {

// Models the wire hop: the receiver sees the same words in a different
// slab (a batched frame is memcpy'd by the NIC, never reinterpreted).
PayloadView Transit(const Payload& frame, Payload* storage) {
  *storage = Payload::Allocate(frame.size());
  std::memcpy(storage->data(), frame.data(),
              static_cast<size_t>(frame.size()) * sizeof(float));
  return storage->View();
}

// ------------------------------------------------------------- raw floats --

TEST(CodecPropertyTest, RawFloatRoundTripIsBitExact) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = 1 + static_cast<int64_t>(rng.NextDouble() * 300);
    Tensor values = Tensor::RandomUniform({n}, -10.0f, 10.0f, rng);
    Payload frame = RawFloatCodec::Encode(values.data(), n);
    Payload wire;
    const PayloadView view = Transit(frame, &wire);

    Tensor decoded;
    const Status status = CodecRegistry::Get(WireCodec::kRawFloat).Decode(view, &decoded,
                                                                          nullptr);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(decoded.size(), n);
    EXPECT_DOUBLE_EQ(MaxAbsDiff(values.Reshaped({n}), decoded), 0.0);
  }
}

// ------------------------------------------------------------------- 1-bit --

TEST(CodecPropertyTest, OneBitMatchesReferenceDecoderBitwise) {
  Rng rng(202);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t rows = 1 + static_cast<int64_t>(rng.NextDouble() * 40);
    const int64_t cols = 1 + static_cast<int64_t>(rng.NextDouble() * 40);
    Tensor grad = Tensor::RandomUniform({rows, cols}, -1.0f, 1.0f, rng);

    OneBitQuantizer through_codec;
    OneBitQuantizer reference;
    Payload frame = OneBitCodec::Encode(grad, &through_codec, nullptr, 0);
    const Tensor want = OneBitQuantizer::Decode(reference.Encode(grad));

    Payload wire;
    Tensor got;
    const Status status = OneBitCodec::DecodeDense(Transit(frame, &wire), &got);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_DOUBLE_EQ(MaxAbsDiff(want, got), 0.0)
        << "codec decode must be bitwise identical to OneBitQuantizer::Decode";
    // Both quantizers saw the same input: identical residuals.
    EXPECT_DOUBLE_EQ(MaxAbsDiff(through_codec.residual(), reference.residual()), 0.0);
  }
}

TEST(CodecPropertyTest, OneBitResidualInvariantHoldsAcrossTheWire) {
  // Error feedback: Decode(frame) + residual' == gradient + residual.
  Rng rng(203);
  Tensor grad = Tensor::RandomUniform({16, 24}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  Payload frame = OneBitCodec::Encode(grad, &quantizer, nullptr, 0);
  Payload wire;
  Tensor decoded;
  ASSERT_TRUE(OneBitCodec::DecodeDense(Transit(frame, &wire), &decoded).ok());
  for (int64_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(decoded[i] + quantizer.residual()[i], grad[i], 1e-6);
  }
}

TEST(CodecPropertyTest, OneBitBiasRidesInFrame) {
  Rng rng(204);
  Tensor grad = Tensor::RandomUniform({8, 6}, -1.0f, 1.0f, rng);
  const std::vector<float> bias = {0.5f, -1.25f, 3.0f, 0.0f, -7.5f, 2.25f, 1.0f, -0.5f};
  OneBitQuantizer quantizer;
  Payload frame = OneBitCodec::Encode(grad, &quantizer, bias.data(),
                                      static_cast<int64_t>(bias.size()));
  Payload wire;
  Tensor dense;
  std::vector<float> decoded_bias;
  const Status status = CodecRegistry::Get(WireCodec::kOneBit)
                            .Decode(Transit(frame, &wire), &dense, &decoded_bias);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded_bias, bias);
}

// ------------------------------------------------------ sufficient factors --

TEST(CodecPropertyTest, SufficientFactorReconstructionIsExact) {
  Rng rng(303);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t k = 1 + static_cast<int64_t>(rng.NextDouble() * 16);
    const int64_t m = 1 + static_cast<int64_t>(rng.NextDouble() * 30);
    const int64_t n = 1 + static_cast<int64_t>(rng.NextDouble() * 30);
    Tensor errors = Tensor::RandomUniform({k, m}, -1.0f, 1.0f, rng);
    Tensor inputs = Tensor::RandomUniform({k, n}, -1.0f, 1.0f, rng);
    const SufficientFactors factors = MakeSufficientFactors(errors, inputs);

    Tensor want({m, n});
    ReconstructGradient(factors, &want);

    Payload frame = SufficientFactorCodec::Encode(factors, nullptr, 0);
    Payload wire;
    Tensor got({m, n});
    const Status status =
        SufficientFactorCodec::DecodeReconstruct(Transit(frame, &wire), &got);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_DOUBLE_EQ(MaxAbsDiff(want, got), 0.0)
        << "frame reconstruction must be bitwise identical to ReconstructGradient";
  }
}

TEST(CodecPropertyTest, SufficientFactorRankOne) {
  Tensor errors = Tensor::FromVector({1, 2}, {2, 3});
  Tensor inputs = Tensor::FromVector({1, 3}, {1, 10, 100});
  Payload frame =
      SufficientFactorCodec::Encode(MakeSufficientFactors(errors, inputs), nullptr, 0);
  Tensor recon({2, 3});
  ASSERT_TRUE(SufficientFactorCodec::DecodeReconstruct(frame.View(), &recon).ok());
  EXPECT_FLOAT_EQ(recon.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(recon.At(0, 2), 200.0f);
  EXPECT_FLOAT_EQ(recon.At(1, 1), 30.0f);
}

// -------------------------------------------------------------------- fp16 --

TEST(CodecPropertyTest, Fp16ResidualInvariantHoldsAcrossTheWire) {
  // Error feedback: decode(frame) + residual' == quant (up to one fp32
  // rounding in the subtraction; the carried bits re-enter next clock).
  Rng rng(601);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t n = 1 + static_cast<int64_t>(rng.NextDouble() * 700);
    Tensor quant = Tensor::RandomUniform({n}, -4.0f, 4.0f, rng);
    std::vector<float> residual(static_cast<size_t>(n), 0.0f);
    Payload frame = Fp16Codec::EncodeSr(quant.data(), n, /*seed=*/trial, /*base_index=*/0,
                                        residual.data(), nullptr, 0);
    Payload wire;
    Tensor decoded;
    ASSERT_TRUE(Fp16Codec::DecodeDense(Transit(frame, &wire), &decoded).ok());
    ASSERT_EQ(decoded.size(), n);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(decoded[i] + residual[static_cast<size_t>(i)], quant[i], 1e-5)
          << "at " << i;
      // binary16 relative error bound for the in-range values used here.
      EXPECT_NEAR(decoded[i], quant[i], 1e-3 * (1.0 + std::abs(quant[i])));
    }
  }
}

TEST(CodecPropertyTest, Fp16EncodingIsSeedDeterministicAndShardInvariant) {
  Rng rng(602);
  const int64_t n = 513;
  Tensor quant = Tensor::RandomUniform({n}, -2.0f, 2.0f, rng);
  Payload a = Fp16Codec::EncodeSr(quant.data(), n, 77, 0, nullptr, nullptr, 0);
  Payload b = Fp16Codec::EncodeSr(quant.data(), n, 77, 0, nullptr, nullptr, 0);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * 4), 0)
      << "same (seed, base_index) must give identical frames";

  // Striping the layer across shards must not change any element's bits:
  // the second half encoded alone with base_index = split matches the
  // corresponding halves of the whole-layer frame.
  const int64_t split = 200;
  Payload tail = Fp16Codec::EncodeSr(quant.data() + split, n - split, 77, split, nullptr,
                                     nullptr, 0);
  StatusOr<Fp16Codec::Frame> whole = Fp16Codec::Parse(a.View());
  StatusOr<Fp16Codec::Frame> part = Fp16Codec::Parse(tail.View());
  ASSERT_TRUE(whole.ok() && part.ok());
  for (int64_t i = 0; i < n - split; ++i) {
    EXPECT_EQ(whole->half(split + i), part->half(i)) << "at " << i;
  }
}

TEST(CodecPropertyTest, Fp16OutOfRangeValuesClampAndFlush) {
  const std::vector<float> extremes = {1e9f, -1e9f, 65504.0f, -70000.0f,
                                       1e-8f, -1e-8f, 0.0f, -0.0f};
  const int64_t n = static_cast<int64_t>(extremes.size());
  Payload frame = Fp16Codec::EncodeRn(extremes.data(), n, nullptr, 0);
  Tensor decoded;
  ASSERT_TRUE(Fp16Codec::DecodeDense(frame.View(), &decoded).ok());
  EXPECT_FLOAT_EQ(decoded[0], 65504.0f);   // clamp, not inf
  EXPECT_FLOAT_EQ(decoded[1], -65504.0f);
  EXPECT_FLOAT_EQ(decoded[2], 65504.0f);   // max finite half is exact
  EXPECT_FLOAT_EQ(decoded[3], -65504.0f);
  EXPECT_FLOAT_EQ(decoded[4], 0.0f);       // subnormal flush
  EXPECT_FLOAT_EQ(decoded[5], 0.0f);
  EXPECT_FLOAT_EQ(decoded[6], 0.0f);
  EXPECT_FLOAT_EQ(decoded[7], 0.0f);
}

// -------------------------------------------------------------------- int8 --

TEST(CodecPropertyTest, Int8ErrorBoundedByChunkScale) {
  Rng rng(701);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t n = 1 + static_cast<int64_t>(rng.NextDouble() * 900);
    Tensor quant = Tensor::RandomUniform({n}, -3.0f, 3.0f, rng);
    std::vector<float> residual(static_cast<size_t>(n), 0.0f);
    Payload frame = Int8Codec::EncodeSr(quant.data(), n, /*seed=*/trial, 0,
                                        residual.data(), nullptr, 0);
    Payload wire;
    Tensor decoded;
    ASSERT_TRUE(Int8Codec::DecodeDense(Transit(frame, &wire), &decoded).ok());
    ASSERT_EQ(decoded.size(), n);
    StatusOr<Int8Codec::Frame> parsed = Int8Codec::Parse(frame.View());
    ASSERT_TRUE(parsed.ok());
    for (int64_t i = 0; i < n; ++i) {
      const float scale = parsed->scales.data()[i / simd::kInt8ChunkSize];
      // Stochastic rounding moves at most one quantization step.
      EXPECT_LE(std::abs(decoded[i] - quant[i]), scale * 1.0001f) << "at " << i;
      EXPECT_NEAR(decoded[i] + residual[static_cast<size_t>(i)], quant[i], 1e-5);
    }
  }
}

TEST(CodecPropertyTest, Int8BadChunksDecodeToZeroAndCarryResidual) {
  // A chunk with a non-finite max|x| (or all zeros) gets scale 0: it decodes
  // to zeros and the residual keeps the finite content for the next clock.
  std::vector<float> quant(static_cast<size_t>(simd::kInt8ChunkSize) * 2, 0.0f);
  quant[3] = std::numeric_limits<float>::infinity();  // poisons chunk 0
  quant[5] = 1.5f;
  quant[static_cast<size_t>(simd::kInt8ChunkSize) + 7] = -2.0f;  // chunk 1 is fine
  std::vector<float> residual(quant.size(), 0.0f);
  const int64_t n = static_cast<int64_t>(quant.size());
  Payload frame = Int8Codec::EncodeSr(quant.data(), n, 9, 0, residual.data(), nullptr, 0);
  Tensor decoded;
  ASSERT_TRUE(Int8Codec::DecodeDense(frame.View(), &decoded).ok());
  EXPECT_FLOAT_EQ(decoded[5], 0.0f) << "poisoned chunk must decode to zeros";
  EXPECT_FLOAT_EQ(residual[5], 1.5f) << "finite content must survive in the residual";
  EXPECT_NE(decoded[simd::kInt8ChunkSize + 7], 0.0f) << "healthy chunk still encodes";
}

TEST(CodecPropertyTest, Int8EncodingIsSeedDeterministic) {
  Rng rng(702);
  const int64_t n = 700;
  Tensor quant = Tensor::RandomUniform({n}, -1.0f, 1.0f, rng);
  Payload a = Int8Codec::EncodeSr(quant.data(), n, 5, 128, nullptr, nullptr, 0);
  Payload b = Int8Codec::EncodeSr(quant.data(), n, 5, 128, nullptr, nullptr, 0);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * 4), 0);
}

// ------------------------------------------------------------------- top-k --

TEST(CodecPropertyTest, TopKSelectsLargestMagnitudesExactly) {
  Rng rng(801);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t n = 16 + static_cast<int64_t>(rng.NextDouble() * 500);
    const int64_t k = 1 + static_cast<int64_t>(rng.NextDouble() * (n - 1));
    Tensor quant = Tensor::RandomUniform({n}, -5.0f, 5.0f, rng);
    std::vector<float> residual(static_cast<size_t>(n), 0.0f);
    Payload frame = TopKCodec::Encode(quant.data(), n, k, residual.data(), nullptr, 0);
    Payload wire;
    StatusOr<TopKCodec::Frame> parsed = TopKCodec::Parse(Transit(frame, &wire));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->k, k);

    // Selected values are sent exact, with zero residual; every unselected
    // coordinate keeps its full value in the residual. No selected magnitude
    // may be smaller than an unselected one.
    std::vector<bool> selected(static_cast<size_t>(n), false);
    float min_selected = std::numeric_limits<float>::infinity();
    for (int64_t i = 0; i < k; ++i) {
      const int64_t idx = parsed->index(i);
      selected[static_cast<size_t>(idx)] = true;
      EXPECT_EQ(parsed->values.data()[i], quant[idx]) << "values must be exact";
      EXPECT_FLOAT_EQ(residual[static_cast<size_t>(idx)], 0.0f);
      min_selected = std::min(min_selected, std::abs(quant[idx]));
    }
    for (int64_t i = 0; i < n; ++i) {
      if (!selected[static_cast<size_t>(i)]) {
        EXPECT_EQ(residual[static_cast<size_t>(i)], quant[i]);
        EXPECT_LE(std::abs(quant[i]), min_selected);
      }
    }

    Tensor decoded;
    ASSERT_TRUE(TopKCodec::DecodeDense(wire.View(), &decoded).ok());
    ASSERT_EQ(decoded.size(), n);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(decoded[i], selected[static_cast<size_t>(i)] ? quant[i] : 0.0f);
    }
  }
}

TEST(CodecPropertyTest, TopKBreaksTiesInIndexOrder) {
  const std::vector<float> quant = {1.0f, -1.0f, 0.5f, 1.0f, -1.0f, 1.0f};
  std::vector<float> residual(quant.size(), 0.0f);
  Payload frame = TopKCodec::Encode(quant.data(), 6, /*k=*/3, residual.data(), nullptr, 0);
  StatusOr<TopKCodec::Frame> parsed = TopKCodec::Parse(frame.View());
  ASSERT_TRUE(parsed.ok());
  // Five elements tie at |1.0|; the three lowest indices win, in order.
  EXPECT_EQ(parsed->index(0), 0);
  EXPECT_EQ(parsed->index(1), 1);
  EXPECT_EQ(parsed->index(2), 3);
}

TEST(CodecPropertyTest, TopKRejectsNonIncreasingIndices) {
  const std::vector<float> quant = {3.0f, 2.0f, 1.0f, 4.0f};
  Payload frame = TopKCodec::Encode(quant.data(), 4, 2, nullptr, nullptr, 0);
  // Swap the two (sorted) index words: Parse must reject the frame.
  StatusOr<TopKCodec::Frame> parsed = TopKCodec::Parse(frame.View());
  ASSERT_TRUE(parsed.ok());
  uint32_t i0, i1;
  std::memcpy(&i0, frame.data() + 3, 4);
  std::memcpy(&i1, frame.data() + 4, 4);
  std::memcpy(frame.data() + 3, &i1, 4);
  std::memcpy(frame.data() + 4, &i0, 4);
  EXPECT_FALSE(TopKCodec::Parse(frame.View()).ok());
  Tensor dense;
  EXPECT_FALSE(TopKCodec::DecodeDense(frame.View(), &dense).ok());
}

// -------------------------------------------------- error-feedback convergence --

// Iterated quantize-with-residual of a constant gradient: the mean of the
// decoded transmissions converges to the true gradient for every codec. For
// top-k this is the "every coordinate eventually escapes" property — with
// k = 1 of 8 the residual accumulates each skipped coordinate until it wins.
TEST(CodecPropertyTest, ErrorFeedbackMeansConvergeToTrueGradient) {
  const std::vector<float> grad = {0.011f, -0.007f, 0.0301f, -0.052f,
                                   0.0009f, 0.0404f, -0.0203f, 0.0101f};
  const int64_t n = static_cast<int64_t>(grad.size());
  const int rounds = 400;
  for (int mode = 0; mode < 3; ++mode) {
    SCOPED_TRACE(mode == 0 ? "fp16" : mode == 1 ? "int8" : "topk");
    std::vector<float> residual(grad.size(), 0.0f);
    std::vector<double> applied(grad.size(), 0.0);
    for (int t = 0; t < rounds; ++t) {
      std::vector<float> quant = grad;
      for (size_t i = 0; i < quant.size(); ++i) {
        quant[i] += residual[i];
      }
      Payload frame;
      switch (mode) {
        case 0:
          frame = Fp16Codec::EncodeSr(quant.data(), n, static_cast<uint32_t>(t), 0,
                                      residual.data(), nullptr, 0);
          break;
        case 1:
          frame = Int8Codec::EncodeSr(quant.data(), n, static_cast<uint32_t>(t), 0,
                                      residual.data(), nullptr, 0);
          break;
        default:
          frame = TopKCodec::Encode(quant.data(), n, /*k=*/1, residual.data(), nullptr, 0);
      }
      Tensor decoded;
      const Codec& codec = CodecRegistry::Get(
          mode == 0 ? WireCodec::kFp16 : mode == 1 ? WireCodec::kInt8 : WireCodec::kTopK);
      ASSERT_TRUE(codec.Decode(frame.View(), &decoded, nullptr).ok());
      for (int64_t i = 0; i < n; ++i) {
        applied[static_cast<size_t>(i)] += decoded[i];
      }
    }
    for (size_t i = 0; i < grad.size(); ++i) {
      EXPECT_NEAR(applied[i] / rounds, grad[i], 5e-4)
          << "coordinate " << i << " did not converge under error feedback";
    }
  }
}

// ------------------------------------------------------------------ fuzzing --

// Every truncation of a valid frame must fail with a Status, never crash.
void ExpectAllTruncationsFail(const Codec& codec, const Payload& frame) {
  for (int64_t len = 0; len < frame.size(); ++len) {
    const PayloadView truncated = frame.View(0, len);
    const StatusOr<int64_t> validated = codec.Validate(truncated);
    EXPECT_FALSE(validated.ok()) << codec.name() << " accepted a frame truncated to "
                                 << len << "/" << frame.size() << " words";
    Tensor dense;
    std::vector<float> bias;
    EXPECT_FALSE(codec.Decode(truncated, &dense, &bias).ok());
  }
}

TEST(CodecPropertyTest, TruncatedOneBitFramesReturnStatus) {
  Rng rng(404);
  Tensor grad = Tensor::RandomUniform({5, 9}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  const std::vector<float> bias = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  Payload frame = OneBitCodec::Encode(grad, &quantizer, bias.data(), 5);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kOneBit), frame);
}

TEST(CodecPropertyTest, TruncatedSufficientFactorFramesReturnStatus) {
  Rng rng(405);
  Tensor errors = Tensor::RandomUniform({4, 7}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({4, 11}, -1.0f, 1.0f, rng);
  Payload frame = SufficientFactorCodec::Encode(MakeSufficientFactors(errors, inputs),
                                                nullptr, 0);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kSufficientFactor), frame);
}

TEST(CodecPropertyTest, TruncatedCompressedFramesReturnStatus) {
  Rng rng(406);
  const int64_t n = 73;
  Tensor quant = Tensor::RandomUniform({n}, -1.0f, 1.0f, rng);
  const std::vector<float> bias = {1.0f, -2.0f, 3.0f};
  Payload fp16 = Fp16Codec::EncodeSr(quant.data(), n, 1, 0, nullptr, bias.data(), 3);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kFp16), fp16);
  Payload int8 = Int8Codec::EncodeSr(quant.data(), n, 1, 0, nullptr, bias.data(), 3);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kInt8), int8);
  Payload topk = TopKCodec::Encode(quant.data(), n, 9, nullptr, bias.data(), 3);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kTopK), topk);
}

TEST(CodecPropertyTest, FuzzedHeadersNeverCrash) {
  // Random junk words as frames: decode must either succeed (self-consistent
  // junk) or return a Status; it must never abort or read out of bounds.
  Rng rng(506);
  for (WireCodec id : CodecRegistry::Ids()) {
    const Codec& codec = CodecRegistry::Get(id);
    for (int trial = 0; trial < 200; ++trial) {
      const int64_t words = static_cast<int64_t>(rng.NextDouble() * 64);
      Payload junk = Payload::Allocate(words);
      for (int64_t i = 0; i < words; ++i) {
        const uint32_t bits = static_cast<uint32_t>(rng.NextDouble() * 4294967295.0);
        std::memcpy(junk.data() + i, &bits, sizeof(bits));
      }
      const StatusOr<int64_t> validated = codec.Validate(junk.View());
      Tensor dense;
      std::vector<float> bias;
      const Status decoded = codec.Decode(junk.View(), &dense, &bias);
      EXPECT_EQ(validated.ok(), decoded.ok())
          << codec.name() << ": Validate and Decode must agree on fuzzed input";
    }
  }
}

TEST(CodecPropertyTest, NegativeDimensionsAreRejected) {
  Payload frame = Payload::Allocate(8);
  const uint32_t negative = 0x80000001u;  // -2147483647 as int32
  std::memcpy(frame.data(), &negative, sizeof(negative));
  Tensor dense;
  EXPECT_FALSE(OneBitCodec::DecodeDense(frame.View(), &dense).ok());
  Tensor out({1, 1});
  EXPECT_FALSE(SufficientFactorCodec::DecodeReconstruct(frame.View(), &out).ok());
}

// ------------------------------------------------------------------ registry --

TEST(CodecPropertyTest, RegistryServesAllBuiltins) {
  const std::vector<WireCodec> ids = CodecRegistry::Ids();
  ASSERT_GE(ids.size(), 6u);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kRawFloat).id(), WireCodec::kRawFloat);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kOneBit).id(), WireCodec::kOneBit);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kSufficientFactor).id(),
            WireCodec::kSufficientFactor);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kFp16).id(), WireCodec::kFp16);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kInt8).id(), WireCodec::kInt8);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kTopK).id(), WireCodec::kTopK);
  EXPECT_EQ(CodecRegistry::Find(static_cast<WireCodec>(200)), nullptr);
}

TEST(CodecPropertyTest, QuantSeedIsAPureFunctionOfLayerAndClock) {
  EXPECT_EQ(QuantSeed(3, 17), QuantSeed(3, 17));
  EXPECT_NE(QuantSeed(3, 17), QuantSeed(4, 17));
  EXPECT_NE(QuantSeed(3, 17), QuantSeed(3, 18));
  EXPECT_NE(QuantSeed(0, 0), QuantSeed(0, 1));
}

}  // namespace
}  // namespace poseidon

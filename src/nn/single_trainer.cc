#include "src/nn/single_trainer.h"

#include "src/common/logging.h"

namespace poseidon {

std::vector<SingleNodeStats> TrainSingleNode(Network& net, const SyntheticDataset& dataset,
                                             SgdOptimizer& optimizer, int iterations,
                                             int batch, int64_t first_iter) {
  CHECK_GT(iterations, 0);
  std::vector<SingleNodeStats> stats;
  stats.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    const int64_t iter = first_iter + i;
    const Batch data = dataset.TrainBatch(iter, batch);
    const LossResult result = net.Forward(data.images, data.labels);
    net.Backward();
    int layer_index = 0;
    for (auto& layer_params : net.LayerParams()) {
      for (ParamBlock& p : layer_params) {
        optimizer.Step("l" + std::to_string(layer_index) + "." + p.name, *p.grad, p.value);
      }
      ++layer_index;
    }
    stats.push_back({iter, result.loss, result.accuracy});
  }
  return stats;
}

}  // namespace poseidon

#include "src/transport/wire_format.h"

#include <cstring>
#include <string>

#include "src/common/logging.h"

namespace poseidon {
namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. The encoder writes byte-by-byte so the layout is
// identical on any host; the decoder mirrors it. Payload float words are
// memcpy'd in bulk (they are already byte sequences — codecs bit-cast
// non-float data into words on both sides, see payload.h).
// ---------------------------------------------------------------------------

void PutU16(std::vector<uint8_t>* out, int64_t at, uint16_t v) {
  (*out)[at] = static_cast<uint8_t>(v & 0xFF);
  (*out)[at + 1] = static_cast<uint8_t>((v >> 8) & 0xFF);
}

void PutU32(std::vector<uint8_t>* out, int64_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[at + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

void PutU64(std::vector<uint8_t>* out, int64_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*out)[at + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

int16_t NarrowI16(int64_t v, const char* what) {
  CHECK(v >= INT16_MIN && v <= INT16_MAX)
      << what << " " << v << " does not fit the 16-bit wire field";
  return static_cast<int16_t>(v);
}

int32_t NarrowI32(int64_t v, const char* what) {
  CHECK(v >= INT32_MIN && v <= INT32_MAX)
      << what << " " << v << " does not fit the 32-bit wire field";
  return static_cast<int32_t>(v);
}

// ---------------------------------------------------------------------------
// Batched-frame port compression. A 12-byte entry header cannot carry two
// full 32-bit ports, so ports are stored as (space, index) pairs covering the
// repo's complete port map:
//   space 0: raw port < 2^14 — shard endpoints [0, 1000) and syncer
//            mailboxes 1000 + layer (layer caps below keep these in range)
//   space 1: collective, index = port - kCollectivePortBase
//   space 2: monitor, index ignored (the monitor port is a singleton)
// Space 3 is reserved. 14 index bits per port; both (space, index) pairs fit
// one 32-bit word.
// ---------------------------------------------------------------------------

constexpr int kPortSpaceRaw = 0;
constexpr int kPortSpaceCollective = 1;
constexpr int kPortSpaceMonitor = 2;
constexpr uint32_t kPortIndexMax = (1u << 14) - 1;

uint32_t CompressPort(int port) {
  if (port == kMonitorPort) {
    return static_cast<uint32_t>(kPortSpaceMonitor) | (0u << 2);
  }
  if (port >= kCollectivePortBase) {
    uint32_t index = static_cast<uint32_t>(port - kCollectivePortBase);
    CHECK_LE(index, kPortIndexMax)
        << "collective tag " << index << " too large for a batched entry";
    return static_cast<uint32_t>(kPortSpaceCollective) | (index << 2);
  }
  CHECK(port >= 0 && static_cast<uint32_t>(port) <= kPortIndexMax)
      << "port " << port << " too large for a batched entry";
  return static_cast<uint32_t>(kPortSpaceRaw) |
         (static_cast<uint32_t>(port) << 2);
}

Status ExpandPort(uint32_t packed, int* port) {
  uint32_t space = packed & 0x3;
  uint32_t index = packed >> 2;
  switch (space) {
    case kPortSpaceRaw:
      *port = static_cast<int>(index);
      return Status::Ok();
    case kPortSpaceCollective:
      *port = kCollectivePortBase + static_cast<int>(index);
      return Status::Ok();
    case kPortSpaceMonitor:
      *port = kMonitorPort;
      return Status::Ok();
    default:
      return InvalidArgumentError("batched entry uses reserved port space");
  }
}

// Packed 12-byte batch entry header: three little-endian u32 words.
//   word0: bits [0..15]  compressed to-port, [16..31] compressed from-port
//   word1: bits [0..2]   type, [3..5] codec, [6..15] num_chunks,
//          [16..25] layer + 1, [26..31] worker + 1
//   word2: bits [0..6]   step + 1, [7..31] seq + 1
// The +1 biases let -1 sentinels ride unsigned fields. Ranges (layer <= 1022,
// worker <= 62, step <= 126, seq <= 2^25 - 2, chunks <= 1023) are CHECKed at
// encode: the cluster shapes this repo trains are orders of magnitude below
// every cap, and a loud abort beats silent truncation.
struct PackedEntry {
  uint32_t word0 = 0;
  uint32_t word1 = 0;
  uint32_t word2 = 0;
};

PackedEntry PackEntryHeader(const Message& m) {
  CHECK(m.layer >= -1 && m.layer <= 1021) << "layer out of batched range";
  CHECK(m.worker >= -1 && m.worker <= 61) << "worker out of batched range";
  CHECK(m.step >= -1 && m.step <= 125) << "step out of batched range";
  CHECK(m.seq >= -1 && m.seq <= (1 << 25) - 2) << "seq out of batched range";
  CHECK_LE(m.chunks.size(), 1023u) << "too many chunks for a batched entry";
  PackedEntry e;
  e.word0 = CompressPort(m.to.port) | (CompressPort(m.from.port) << 16);
  e.word1 = (static_cast<uint32_t>(m.type) & 0x7) |
            ((static_cast<uint32_t>(m.codec) & 0x7) << 3) |
            ((static_cast<uint32_t>(m.chunks.size()) & 0x3FF) << 6) |
            ((static_cast<uint32_t>(m.layer + 1) & 0x3FF) << 16) |
            ((static_cast<uint32_t>(m.worker + 1) & 0x3F) << 26);
  e.word2 = (static_cast<uint32_t>(m.step + 1) & 0x7F) |
            (static_cast<uint32_t>(m.seq + 1) << 7);
  return e;
}

Status UnpackEntryHeader(const PackedEntry& e, int from_node, int to_node,
                         int64_t iter, Message* m) {
  int to_port = 0;
  int from_port = 0;
  Status status = ExpandPort(e.word0 & 0xFFFF, &to_port);
  if (!status.ok()) return status;
  status = ExpandPort(e.word0 >> 16, &from_port);
  if (!status.ok()) return status;
  uint32_t type = e.word1 & 0x7;
  if (type > static_cast<uint32_t>(MessageType::kShutdown)) {
    return InvalidArgumentError("batched entry has unknown message type " +
                                std::to_string(type));
  }
  uint32_t codec = (e.word1 >> 3) & 0x7;
  if (codec > static_cast<uint32_t>(WireCodec::kSufficientFactor)) {
    return InvalidArgumentError("batched entry has unknown codec " +
                                std::to_string(codec));
  }
  m->type = static_cast<MessageType>(type);
  m->codec = static_cast<WireCodec>(codec);
  m->from = Address{from_node, from_port};
  m->to = Address{to_node, to_port};
  m->layer = static_cast<int>((e.word1 >> 16) & 0x3FF) - 1;
  m->worker = static_cast<int>((e.word1 >> 26) & 0x3F) - 1;
  m->step = static_cast<int>(e.word2 & 0x7F) - 1;
  m->seq = static_cast<int64_t>(e.word2 >> 7) - 1;
  m->iter = iter;
  m->send_ns = 0;
  m->chunks.clear();
  m->chunks.reserve((e.word1 >> 6) & 0x3FF);
  return Status::Ok();
}

// Writes the shared 32-byte frame header. For batched frames `type` is
// kWireBatchType, `count` is the entry count and the port fields are zero.
void WriteFrameHeader(std::vector<uint8_t>* out, uint8_t type, uint8_t codec,
                      uint16_t count, const Address& from, const Address& to,
                      int layer, int worker, int step, int64_t iter,
                      int64_t seq) {
  (*out)[0] = type;
  (*out)[1] = codec;
  PutU16(out, 2, count);
  PutU16(out, 4, static_cast<uint16_t>(NarrowI16(from.node, "from.node")));
  PutU16(out, 6, static_cast<uint16_t>(NarrowI16(to.node, "to.node")));
  PutU32(out, 8, static_cast<uint32_t>(NarrowI32(from.port, "from.port")));
  PutU32(out, 12, static_cast<uint32_t>(NarrowI32(to.port, "to.port")));
  PutU16(out, 16, static_cast<uint16_t>(NarrowI16(layer, "layer")));
  PutU16(out, 18, static_cast<uint16_t>(NarrowI16(worker, "worker")));
  PutU16(out, 20, static_cast<uint16_t>(NarrowI16(step, "step")));
  PutU16(out, 22, 0);  // flags, reserved
  PutU32(out, 24, static_cast<uint32_t>(NarrowI32(iter, "iter")));
  PutU32(out, 28, static_cast<uint32_t>(NarrowI32(seq, "seq")));
}

// Appends one chunk header + its payload words at `at`; returns the new
// write offset.
int64_t WriteChunk(std::vector<uint8_t>* out, int64_t at,
                   const WireChunk& chunk) {
  PutU64(out, at, static_cast<uint64_t>(chunk.offset));
  PutU64(out, at + 8, static_cast<uint64_t>(chunk.view.size()));
  at += kWireChunkHeaderBytes;
  const int64_t bytes = chunk.view.size() * 4;
  if (bytes > 0) {
    std::memcpy(out->data() + at, chunk.view.data(), bytes);
  }
  return at + bytes;
}

// Frame-relative decode cursor with bounds-checked reads: every malformed or
// truncated input path lands here and returns Status instead of reading out
// of bounds.
struct Cursor {
  const uint8_t* data;
  int64_t size;
  int64_t at = 0;

  int64_t remaining() const { return size - at; }

  Status Need(int64_t bytes, const char* what) {
    if (remaining() < bytes) {
      return OutOfRangeError(std::string("wire frame truncated in ") + what +
                             ": need " + std::to_string(bytes) + " bytes, " +
                             std::to_string(remaining()) + " left");
    }
    return Status::Ok();
  }
};

// Reads `count` chunk headers + payloads into `m`, copying payload words
// into `slab` starting at *slab_at (the caller sized the slab from the frame
// length, so the writes always fit).
Status ReadChunks(Cursor* c, int count, const Payload& slab, int64_t* slab_at,
                  Message* m) {
  for (int i = 0; i < count; ++i) {
    Status status = c->Need(kWireChunkHeaderBytes, "chunk header");
    if (!status.ok()) return status;
    const int64_t offset = static_cast<int64_t>(GetU64(c->data + c->at));
    const int64_t words = static_cast<int64_t>(GetU64(c->data + c->at + 8));
    c->at += kWireChunkHeaderBytes;
    if (offset < 0 || words < 0 || words > c->remaining() / 4 + 1) {
      return InvalidArgumentError("wire chunk header has implausible size");
    }
    status = c->Need(words * 4, "chunk payload");
    if (!status.ok()) return status;
    WireChunk chunk;
    chunk.offset = offset;
    if (words > 0) {
      std::memcpy(const_cast<float*>(slab.data()) + *slab_at, c->data + c->at,
                  words * 4);
    }
    chunk.view = slab.View(*slab_at, words);
    *slab_at += words;
    c->at += words * 4;
    m->chunks.push_back(std::move(chunk));
  }
  return Status::Ok();
}

Status DecodeMessageFrame(Cursor* c, std::vector<Message>* out) {
  const uint8_t* h = c->data;
  uint32_t type = h[0];
  if (type > static_cast<uint32_t>(MessageType::kShutdown)) {
    return InvalidArgumentError("wire frame has unknown message type " +
                                std::to_string(type));
  }
  uint32_t codec = h[1];
  if (codec > static_cast<uint32_t>(WireCodec::kSufficientFactor)) {
    return InvalidArgumentError("wire frame has unknown codec " +
                                std::to_string(codec));
  }
  Message m;
  m.type = static_cast<MessageType>(type);
  m.codec = static_cast<WireCodec>(codec);
  const int num_chunks = GetU16(h + 2);
  m.from.node = static_cast<int16_t>(GetU16(h + 4));
  m.to.node = static_cast<int16_t>(GetU16(h + 6));
  m.from.port = static_cast<int32_t>(GetU32(h + 8));
  m.to.port = static_cast<int32_t>(GetU32(h + 12));
  m.layer = static_cast<int16_t>(GetU16(h + 16));
  m.worker = static_cast<int16_t>(GetU16(h + 18));
  m.step = static_cast<int16_t>(GetU16(h + 20));
  m.iter = static_cast<int32_t>(GetU32(h + 24));
  m.seq = static_cast<int32_t>(GetU32(h + 28));
  c->at = kWireFrameBytes;

  // All payload words of the frame share one slab; remaining bytes bound it.
  Payload slab = Payload::Allocate(c->remaining() / 4);
  int64_t slab_at = 0;
  Status status = ReadChunks(c, num_chunks, slab, &slab_at, &m);
  if (!status.ok()) return status;
  if (c->remaining() != 0) {
    return InvalidArgumentError("wire frame has trailing bytes");
  }
  out->push_back(std::move(m));
  return Status::Ok();
}

Status DecodeBatchFrame(Cursor* c, std::vector<Message>* out) {
  const uint8_t* h = c->data;
  const int num_entries = GetU16(h + 2);
  const int from_node = static_cast<int16_t>(GetU16(h + 4));
  const int to_node = static_cast<int16_t>(GetU16(h + 6));
  const int64_t iter = static_cast<int32_t>(GetU32(h + 24));
  c->at = kWireFrameBytes;

  Payload slab = Payload::Allocate(c->remaining() / 4);
  int64_t slab_at = 0;
  for (int i = 0; i < num_entries; ++i) {
    Status status = c->Need(kBatchEntryHeaderBytes, "batch entry header");
    if (!status.ok()) return status;
    PackedEntry e;
    e.word0 = GetU32(c->data + c->at);
    e.word1 = GetU32(c->data + c->at + 4);
    e.word2 = GetU32(c->data + c->at + 8);
    c->at += kBatchEntryHeaderBytes;
    Message m;
    status = UnpackEntryHeader(e, from_node, to_node, iter, &m);
    if (!status.ok()) return status;
    const int num_chunks = static_cast<int>((e.word1 >> 6) & 0x3FF);
    status = ReadChunks(c, num_chunks, slab, &slab_at, &m);
    if (!status.ok()) return status;
    out->push_back(std::move(m));
  }
  if (c->remaining() != 0) {
    return InvalidArgumentError("batched wire frame has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> EncodeMessageFrame(const Message& message) {
  std::vector<uint8_t> out(static_cast<size_t>(message.WireBytes()));
  CHECK_LE(message.chunks.size(), 0xFFFFu) << "too many chunks for one frame";
  WriteFrameHeader(&out, static_cast<uint8_t>(message.type),
                   static_cast<uint8_t>(message.codec),
                   static_cast<uint16_t>(message.chunks.size()), message.from,
                   message.to, message.layer, message.worker, message.step,
                   message.iter, message.seq);
  int64_t at = kWireFrameBytes;
  for (const WireChunk& chunk : message.chunks) {
    at = WriteChunk(&out, at, chunk);
  }
  CHECK_EQ(at, static_cast<int64_t>(out.size()));
  return out;
}

std::vector<uint8_t> EncodeBatchFrame(const std::vector<Message>& entries) {
  CHECK(!entries.empty()) << "cannot encode an empty batch";
  CHECK_LE(entries.size(), 0xFFFFu) << "too many entries for one batch frame";
  int64_t total = kWireFrameBytes;
  for (const Message& m : entries) {
    CHECK_EQ(m.from.node, entries[0].from.node)
        << "batched entries must share a source node";
    CHECK_EQ(m.to.node, entries[0].to.node)
        << "batched entries must share a destination node";
    CHECK_EQ(m.iter, entries[0].iter) << "batched entries must share an iter";
    total += kBatchEntryHeaderBytes + m.PayloadBytes();
  }
  std::vector<uint8_t> out(static_cast<size_t>(total));
  WriteFrameHeader(&out, kWireBatchType, 0,
                   static_cast<uint16_t>(entries.size()),
                   Address{entries[0].from.node, 0},
                   Address{entries[0].to.node, 0}, -1, -1, -1,
                   entries[0].iter, -1);
  int64_t at = kWireFrameBytes;
  for (const Message& m : entries) {
    const PackedEntry e = PackEntryHeader(m);
    PutU32(&out, at, e.word0);
    PutU32(&out, at + 4, e.word1);
    PutU32(&out, at + 8, e.word2);
    at += kBatchEntryHeaderBytes;
    for (const WireChunk& chunk : m.chunks) {
      at = WriteChunk(&out, at, chunk);
    }
  }
  CHECK_EQ(at, total);
  return out;
}

Status DecodeWireFrame(const uint8_t* data, int64_t size,
                       std::vector<Message>* out) {
  if (size < kWireFrameBytes) {
    return OutOfRangeError("wire frame shorter than the frame header: " +
                           std::to_string(size) + " bytes");
  }
  Cursor c{data, size};
  if (data[0] == kWireBatchType) {
    return DecodeBatchFrame(&c, out);
  }
  return DecodeMessageFrame(&c, out);
}

bool IsBatchFrame(const uint8_t* data, int64_t size) {
  return size >= 1 && data[0] == kWireBatchType;
}

}  // namespace poseidon

// The HybComm communication cost model (paper Table 1 and Algorithm 1).
//
// Costs are in *floats transferred per node per iteration* for synchronizing
// one M x N fully-connected layer across P1 workers and P2 servers with
// per-worker batch size K, exactly as the paper tabulates them. The selection
// rule BestScheme picks SFB for an FC layer iff its peer-broadcast cost is no
// larger than the colocated PS cost; everything else goes through the PS.
#ifndef POSEIDON_SRC_MODELS_COMM_COST_H_
#define POSEIDON_SRC_MODELS_COMM_COST_H_

#include <cstdint>

#include "src/models/model_spec.h"

namespace poseidon {

enum class CommScheme {
  kPS,    // sharded parameter server (full matrices)
  kSFB,   // peer-to-peer sufficient factor broadcasting
  kRing,  // ring allreduce (chunked reduce-scatter + all-gather)
  kTree,  // binary-tree reduce + broadcast
};

const char* CommSchemeName(CommScheme scheme);

struct CommCostQuery {
  int64_t m = 0;        // FC output dimension
  int64_t n = 0;        // FC input dimension
  int64_t batch_k = 0;  // per-worker batch size
  int num_workers = 0;  // P1
  int num_servers = 0;  // P2
  int num_shards = 1;   // S: key-range shard endpoints per server
};

// Table 1, row "PS": floats a pure worker sends+receives (2MN).
double PsWorkerFloats(const CommCostQuery& q);
// Table 1, row "PS": floats a pure server sends+receives (2*P1*M*N/P2).
double PsServerFloats(const CommCostQuery& q);
// Table 1, row "PS": a colocated server+worker node, 2MN(P1+P2-2)/P2.
double PsColocatedFloats(const CommCostQuery& q);
// Table 1, row "SFB": 2K(P1-1)(M+N) per worker.
double SfbWorkerFloats(const CommCostQuery& q);
// Table 1, row "Adam (max)": the server holding the layer,
// P1*M*N + P1*K*(M+N).
double AdamServerMaxFloats(const CommCostQuery& q);
// Table 1, row "Adam (max)": a pure worker, K(M+N) + MN.
double AdamWorkerFloats(const CommCostQuery& q);
// Table 1, row "Adam (max)": colocated, (P1-1)(MN + KM + KN).
double AdamColocatedMaxFloats(const CommCostQuery& q);

// --- Table-1 extension: collective allreduce rows (ring / binary tree). ---
// These treat the M x N layer as a flat tensor of M*N floats synchronized
// peer-to-peer with no servers involved (P2 is ignored). Unlike the paper's
// rows (which sum sends and receives), the collective rows count
// per-direction traffic — egress, which equals ingress and is what a
// full-duplex NIC bounds.
//
// Ring allreduce, per worker: 2*M*N*(P1-1)/P1 floats (reduce-scatter sends
// (P1-1)/P1 of the tensor, all-gather the same).
double RingAllreduceWorkerFloats(const CommCostQuery& q);
// Binary-tree reduce-broadcast, busiest node: an internal node sends M*N up
// plus M*N per child, so 3*M*N once P1 >= 5; for smaller trees the maximum
// is taken over the actual topology.
double TreeAllreduceWorkerFloats(const CommCostQuery& q);

// --- Table-1 extension: multi-shard PS rows. ---
// Each server node hosts S independent key-range shard endpoints, each a
// single-threaded service queue (mailbox + apply thread). The paper's PS rows
// bound the NIC; these rows instead bound the *busiest endpoint*, the
// serialization the single-endpoint PS suffers on its serve path. Per-node
// NIC traffic does not change with S — the rows model how the served volume
// spreads over P2*S independent queues. Both reduce to the paper's rows at
// S = 1.
//
// Busiest shard endpoint on a pure server: 2*P1*M*N/(P2*S).
double PsShardedServerFloats(const CommCostQuery& q);
// Colocated worker + busiest shard endpoint: 2MN(P1 + P2*S - 2)/(P2*S) — the
// paper's colocated row with the served share spread over S endpoints.
double PsShardedColocatedFloats(const CommCostQuery& q);

// The shard count in [1, max_shards] the cost model recommends for an M x N
// layer: the smallest S minimizing the sharded colocated row (the row is
// monotone non-increasing in S for P1 > 2, so this saturates at max_shards
// for communication-bound clusters and stays at 1 when sharding cannot help,
// e.g. P1 <= 2).
int BestPsShardCount(const CommCostQuery& q, int max_shards);

// Algorithm 1: the scheme Poseidon's coordinator selects for `layer`.
CommScheme BestScheme(const LayerSpec& layer, int64_t batch_k, int num_workers, int num_servers);

// The three-way HybComm extension: minimizes the modeled per-node floats
// over PS, SFB (FC layers only) and the collective rows. Conv layers, whose
// gradients are indecomposable but dense, choose between PS and the
// collectives. Candidates are considered in the order PS, SFB, ring, tree
// and replaced only on strict improvement, so ties keep the paper's scheme.
//
// Note the deliberate basis mismatch: the paper's rows count sends plus
// receives as published, while the collective rows follow the standard
// allreduce convention of per-direction volume. The chooser therefore
// credits collectives with the PS path's request/response round trip — a
// bias toward collectives near crossovers (e.g. ring is preferred over a
// colocated PS whose per-direction egress it merely matches). The
// simulator, which moves actual bytes, is the arbiter where this margin
// matters.
// `ps_shards` (default 1: the paper's single-endpoint servers) costs the PS
// candidate at that shard count via the sharded colocated row.
CommScheme BestSchemeExtended(const LayerSpec& layer, int64_t batch_k, int num_workers,
                              int num_servers, int ps_shards = 1);
// Per-worker floats of `scheme` under `q` (the row the chooser compares);
// PS uses the sharded colocated row at q.num_shards (which equals Algorithm
// 1's colocated row at the default q.num_shards = 1).
double SchemeWorkerFloats(CommScheme scheme, const CommCostQuery& q);

// Convenience: would SFB win for an M x N FC layer under this query? The PS
// side is costed at q.num_shards (the paper's Algorithm 1 at the default 1).
bool SfbWins(const CommCostQuery& q);

// --- Table-1 extension: wire-byte rows for the compressed PS path. ---
// The paper's rows count floats; the compressed codecs change the bytes each
// float costs on the wire, so the compressed chooser works in bytes. Only
// the PS path compresses (the collectives and SFB move raw floats: summing
// quantized values loses the error-feedback invariant, and factors are
// already small), so compression rescales the PS rows and leaves the rest at
// 4 bytes per float.

enum class GradCompression {
  kNone,  // raw fp32 both directions
  kFp16,  // binary16 push (stochastic rounding + residual), binary16 reply
  kInt8,  // int8 push with per-256-chunk scales, binary16 reply
  kTopK,  // top-k (index, value) push, binary16 reply
};

const char* GradCompressionName(GradCompression compression);

// Layers below this many floats skip compression: the residual buffer,
// per-frame headers and the encode pass are not worth saving a few KB.
constexpr int64_t kCompressionMinFloats = int64_t{1} << 16;

// Wire bytes per gradient element in the push (worker -> server) direction.
// kTopK sends 8 bytes (index word + exact value) per *selected* element,
// density of them per gradient element.
double PushBytesPerFloat(GradCompression compression, double topk_density);
// Wire bytes per parameter element in the reply (server -> worker)
// direction: 4 raw, 2 for every compressed mode (binary16 round-to-nearest
// replies — the reply is stateless, so sparsifying it would silently freeze
// unselected parameters).
double PullBytesPerFloat(GradCompression compression);

// Per-worker wire bytes of (scheme, compression) under `q`: the float rows
// rescaled by the per-direction byte costs. Non-PS schemes ignore
// `compression` (raw floats, 4 bytes each).
double SchemeWireBytes(CommScheme scheme, GradCompression compression,
                       const CommCostQuery& q, double topk_density);

// The cheapest compression for a PS layer of `layer_floats` elements by the
// byte rows above: kNone below `min_floats` (kCompressionMinFloats unless a
// test or bench lowers it), otherwise kTopK when density makes it cheapest,
// else kInt8. What the runtime's "auto" policy resolves per layer.
GradCompression BestCompression(int64_t layer_floats, double topk_density,
                                int64_t min_floats = kCompressionMinFloats);

// A (scheme, compression) decision with its modeled per-worker wire bytes.
struct SchemeChoice {
  CommScheme scheme = CommScheme::kPS;
  GradCompression compression = GradCompression::kNone;
  double bytes = 0.0;
};

// BestSchemeExtended on the byte basis with compression in the menu:
// minimizes SchemeWireBytes over the PS candidate at every compression
// (kNone always; the quantized/sparse rows once the layer clears
// kCompressionMinFloats, kTopK only at positive density) and the SFB / ring
// / tree candidates at raw floats. Candidate order keeps the uncompressed
// PS row first and replaces only on strict improvement, so ties keep the
// paper's scheme.
SchemeChoice BestSchemeExtendedCompressed(const LayerSpec& layer, int64_t batch_k,
                                          int num_workers, int num_servers,
                                          int ps_shards = 1,
                                          double topk_density = 0.01);

}  // namespace poseidon

#endif  // POSEIDON_SRC_MODELS_COMM_COST_H_

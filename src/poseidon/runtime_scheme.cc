#include "src/poseidon/runtime_scheme.h"

#include <algorithm>

#include "src/common/logging.h"

namespace poseidon {
namespace {

RuntimeScheme FromCommScheme(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::kPS:
      return RuntimeScheme::kPsDense;
    case CommScheme::kSFB:
      return RuntimeScheme::kSfb;
    case CommScheme::kRing:
      return RuntimeScheme::kRingAllreduce;
    case CommScheme::kTree:
      return RuntimeScheme::kTreeAllreduce;
  }
  return RuntimeScheme::kPsDense;
}

}  // namespace

const char* RuntimeSchemeName(RuntimeScheme scheme) {
  switch (scheme) {
    case RuntimeScheme::kNone:
      return "none";
    case RuntimeScheme::kPsDense:
      return "PS";
    case RuntimeScheme::kSfb:
      return "SFB";
    case RuntimeScheme::kOneBit:
      return "1bit";
    case RuntimeScheme::kRingAllreduce:
      return "ring";
    case RuntimeScheme::kTreeAllreduce:
      return "tree";
  }
  return "?";
}

std::vector<RuntimeScheme> ResolveSchemes(const Coordinator& coordinator,
                                          FcSyncPolicy policy) {
  // A collective over one worker is a no-op that would leave gradients
  // unapplied; fall back to the PS, which handles the degenerate world.
  const bool multi_worker = coordinator.cluster().num_workers > 1;
  std::vector<RuntimeScheme> schemes;
  schemes.reserve(static_cast<size_t>(coordinator.num_layers()));
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    if (info.total_floats == 0) {
      schemes.push_back(RuntimeScheme::kNone);
      continue;
    }
    // Collective policies cover every parameter layer, conv included.
    if (policy == FcSyncPolicy::kRingAllreduce) {
      schemes.push_back(multi_worker ? RuntimeScheme::kRingAllreduce
                                     : RuntimeScheme::kPsDense);
      continue;
    }
    if (policy == FcSyncPolicy::kTreeAllreduce) {
      schemes.push_back(multi_worker ? RuntimeScheme::kTreeAllreduce
                                     : RuntimeScheme::kPsDense);
      continue;
    }
    if (policy == FcSyncPolicy::kHybridCollective) {
      schemes.push_back(FromCommScheme(coordinator.BestSchemeExtended(l)));
      continue;
    }
    if (info.type != LayerType::kFC) {
      schemes.push_back(RuntimeScheme::kPsDense);
      continue;
    }
    switch (policy) {
      case FcSyncPolicy::kDense:
        schemes.push_back(RuntimeScheme::kPsDense);
        break;
      case FcSyncPolicy::kSfb:
        schemes.push_back(RuntimeScheme::kSfb);
        break;
      case FcSyncPolicy::kHybrid:
        schemes.push_back(coordinator.BestScheme(l) == CommScheme::kSFB
                              ? RuntimeScheme::kSfb
                              : RuntimeScheme::kPsDense);
        break;
      case FcSyncPolicy::kOneBit:
        schemes.push_back(RuntimeScheme::kOneBit);
        break;
      case FcSyncPolicy::kRingAllreduce:
      case FcSyncPolicy::kTreeAllreduce:
      case FcSyncPolicy::kHybridCollective:
        break;  // handled above
    }
  }
  return schemes;
}

const char* PsCompressionPolicyName(PsCompressionPolicy policy) {
  switch (policy) {
    case PsCompressionPolicy::kNone:
      return "none";
    case PsCompressionPolicy::kFp16:
      return "fp16";
    case PsCompressionPolicy::kInt8:
      return "int8";
    case PsCompressionPolicy::kTopK:
      return "topk";
    case PsCompressionPolicy::kAuto:
      return "auto";
  }
  return "?";
}

std::vector<GradCompression> ResolveCompression(
    const Coordinator& coordinator, const std::vector<RuntimeScheme>& schemes,
    PsCompressionPolicy policy, double topk_density, int64_t min_floats) {
  CHECK_EQ(schemes.size(), static_cast<size_t>(coordinator.num_layers()));
  if (policy == PsCompressionPolicy::kTopK || policy == PsCompressionPolicy::kAuto) {
    CHECK_GT(topk_density, 0.0);
    CHECK_LE(topk_density, 1.0);
  }
  std::vector<GradCompression> plan(schemes.size(), GradCompression::kNone);
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    if (schemes[static_cast<size_t>(l)] != RuntimeScheme::kPsDense) {
      continue;  // only the PS path compresses
    }
    const int64_t floats = coordinator.layer(l).total_floats;
    if (floats < min_floats) {
      continue;  // headers + residual slab are not worth a few KB
    }
    switch (policy) {
      case PsCompressionPolicy::kNone:
        break;
      case PsCompressionPolicy::kFp16:
        plan[static_cast<size_t>(l)] = GradCompression::kFp16;
        break;
      case PsCompressionPolicy::kInt8:
        plan[static_cast<size_t>(l)] = GradCompression::kInt8;
        break;
      case PsCompressionPolicy::kTopK:
        plan[static_cast<size_t>(l)] = GradCompression::kTopK;
        break;
      case PsCompressionPolicy::kAuto:
        plan[static_cast<size_t>(l)] = BestCompression(floats, topk_density, min_floats);
        break;
    }
  }
  return plan;
}

SyncPlan ResolveSchemesSharded(const Coordinator& coordinator, FcSyncPolicy policy,
                               int max_shards) {
  CHECK_GT(max_shards, 0);
  SyncPlan plan;
  plan.schemes = ResolveSchemes(coordinator, policy);
  const ClusterInfo& cluster = coordinator.cluster();
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    if (plan.schemes[static_cast<size_t>(l)] != RuntimeScheme::kPsDense) {
      continue;
    }
    const LayerInfo& info = coordinator.layer(l);
    CommCostQuery q;
    q.m = info.type == LayerType::kFC ? info.fc_m : info.total_floats;
    q.n = info.type == LayerType::kFC ? info.fc_n : 1;
    q.batch_k = cluster.batch_per_worker;
    q.num_workers = cluster.num_workers;
    q.num_servers = cluster.num_servers;
    plan.ps_shards = std::max(plan.ps_shards, BestPsShardCount(q, max_shards));
  }
  return plan;
}

}  // namespace poseidon

// SSP (bounded-staleness) property tests for the sharded KV runtime.
//
// The load-bearing invariant is the staleness bound itself: no worker ever
// observes a clock gap greater than `s` — every parameter read a shard
// releases to a worker at clock c already contains all updates through
// clock c - s — and no worker's push ever leads the applied clock by more
// than s + 1. The KV shards record the maxima of both quantities over the
// whole run, so the property is checked against everything that actually
// happened, not a sample.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/poseidon/trainer.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

using testing::TinyDataset;
using testing::TinyMlpFactory;

SyntheticDataset MakeDataset() { return TinyDataset(); }

NetworkFactory MlpFactory() { return TinyMlpFactory(/*hidden_layers=*/2); }

TrainerOptions SspOptions(int staleness, int shards = 2,
                          FcSyncPolicy policy = FcSyncPolicy::kDense) {
  return testing::SmallTrainerOptions(/*workers=*/4, /*servers=*/2, shards, staleness,
                                      policy);
}

void ExpectClockGapBounded(PoseidonTrainer& trainer, const TrainerOptions& options) {
  for (int s = 0; s < options.num_servers; ++s) {
    EXPECT_LE(trainer.server(s).max_reply_gap(), options.staleness)
        << "a worker observed a clock gap beyond the SSP bound";
    EXPECT_LE(trainer.server(s).max_push_lead(), options.staleness + 1)
        << "a worker ran further ahead than SSP permits";
  }
}

TEST(SspTest, BspNeverObservesAnyGap) {
  const SyntheticDataset dataset = MakeDataset();
  TrainerOptions options = SspOptions(/*staleness=*/0);
  PoseidonTrainer trainer(MlpFactory(), options);
  const auto stats = trainer.Train(dataset, 10);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  ExpectClockGapBounded(trainer, options);  // gap <= 0, lead <= 1
}

TEST(SspTest, ClockGapNeverExceedsStaleness) {
  const SyntheticDataset dataset = MakeDataset();
  for (int staleness : {1, 2, 3}) {
    TrainerOptions options = SspOptions(staleness);
    PoseidonTrainer trainer(MlpFactory(), options);
    const auto stats = trainer.Train(dataset, 15);
    EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss)
        << "SSP s=" << staleness << " stopped learning";
    ExpectClockGapBounded(trainer, options);
  }
}

TEST(SspTest, BoundHoldsAcrossRepeatedTrainCalls) {
  // The SSP clock is global across Train() invocations (clocks keep
  // counting), so the bound must hold over a resumed run too.
  const SyntheticDataset dataset = MakeDataset();
  TrainerOptions options = SspOptions(/*staleness=*/2);
  PoseidonTrainer trainer(MlpFactory(), options);
  trainer.Train(dataset, 6);
  trainer.Train(dataset, 6);
  EXPECT_EQ(trainer.next_iter(), 12);
  ExpectClockGapBounded(trainer, options);
}

TEST(SspTest, BoundHoldsForOneBitLayers) {
  const SyntheticDataset dataset = MakeDataset();
  TrainerOptions options = SspOptions(/*staleness=*/2, /*shards=*/2, FcSyncPolicy::kOneBit);
  PoseidonTrainer trainer(MlpFactory(), options);
  const auto stats = trainer.Train(dataset, 12);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  ExpectClockGapBounded(trainer, options);
}

TEST(SspTest, RestoredRunContinuesUnderSsp) {
  // A checkpoint restore starts the SSP clock at the restored cursor; pushes
  // for the first restored iteration must not trip the clock-order checks.
  const SyntheticDataset dataset = MakeDataset();
  const std::string path = ::testing::TempDir() + "/ssp_restore.ckpt";
  {
    TrainerOptions options = SspOptions(/*staleness=*/1);
    PoseidonTrainer trainer(MlpFactory(), options);
    trainer.Train(dataset, 5);
    ASSERT_TRUE(trainer.SaveCheckpointTo(path).ok());
  }
  TrainerOptions options = SspOptions(/*staleness=*/1);
  options.restore_path = path;
  PoseidonTrainer trainer(MlpFactory(), options);
  EXPECT_EQ(trainer.next_iter(), 5);
  const auto stats = trainer.Train(dataset, 5);
  EXPECT_EQ(stats.front().iter, 5);
  ExpectClockGapBounded(trainer, options);
  std::remove(path.c_str());
}

TEST(SspTest, StalenessZeroMatchesUnshardedBspBitwise) {
  // s = 0 with shards is the acceptance criterion's "existing PS path":
  // identical parameters, bit for bit, to the 1-shard BSP run.
  const SyntheticDataset dataset = MakeDataset();
  auto run = [&](int shards, int staleness) {
    TrainerOptions options = SspOptions(staleness, shards);
    PoseidonTrainer trainer(MlpFactory(), options);
    trainer.Train(dataset, 12);
    return testing::AllParams(trainer.worker_net(0));
  };
  EXPECT_EQ(run(/*shards=*/1, /*staleness=*/0), run(/*shards=*/4, /*staleness=*/0));
}

}  // namespace
}  // namespace poseidon

// Hardware description of the simulated testbed (paper §5: one Titan X per
// node, 16-core CPU, 40 GbE switch) plus the knobs the bandwidth experiments
// (§5.2) turn.
#ifndef POSEIDON_SRC_CLUSTER_CLUSTER_SPEC_H_
#define POSEIDON_SRC_CLUSTER_CLUSTER_SPEC_H_

#include "src/common/units.h"

namespace poseidon {

struct ClusterSpec {
  // Number of machines; each is both a worker and a KV-store shard host
  // (colocated, as in the paper's testbed).
  int num_nodes = 1;
  // NIC bandwidth per direction (full duplex), in decimal gigabits/s.
  double nic_gbps = 40.0;
  // One-way message latency (switch + stack), seconds.
  double latency_s = 40e-6;
  // Host <-> GPU copy bandwidth (PCIe 3.0 x16 effective), bytes/s.
  double pcie_bytes_per_sec = 8e9;
  // CPU-side work rate for update application / (de)quantization, FLOP/s.
  double cpu_flops = 50e9;
  // GPU-side rate for SF gradient reconstruction on spare streams, FLOP/s.
  double recon_flops = 3e12;
  // GPUs per node and the intra-node GPU-to-GPU copy bandwidth (bytes/s)
  // for the multi-GPU extension (§5.1 "Multi-GPU Settings").
  int gpus_per_node = 1;
  double d2d_bytes_per_sec = 10e9;
  // Straggler injection: node `straggler_node` computes `straggler_slowdown`
  // times slower than its peers (-1 disables). Used to study Poseidon's
  // drop-the-straggler BSP policy (§4.1 "Managing Consistency").
  int straggler_node = -1;
  double straggler_slowdown = 1.0;

  double nic_bytes_per_sec() const { return GbpsToBytesPerSec(nic_gbps); }
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_CLUSTER_CLUSTER_SPEC_H_

#include "src/common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/simd/vec.h"
#include "src/stats/bench_record.h"
#include "src/stats/metrics.h"
#include "src/stats/trace.h"

namespace poseidon {
namespace {

// Splits a comma-separated numeric list; exits with a message on junk.
template <typename T, typename ParseFn>
std::vector<T> ParseList(const char* flag, const std::string& value, ParseFn parse) {
  std::vector<T> out;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    const std::string item =
        value.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    char* end = nullptr;
    const T parsed = parse(item.c_str(), &end);
    if (item.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "invalid %s list entry: '%s'\n", flag, item.c_str());
      std::exit(2);
    }
    out.push_back(parsed);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [--nodes=N1,N2,...] [--gbps=B1,B2,...] [--shards=S1,S2,...]\n"
      "       [--fast] [--full]\n"
      "  --nodes  worker/node counts to sweep (default: the bench's)\n"
      "  --gbps   NIC bandwidths to sweep, in Gb/s\n"
      "  --shards KV shard endpoints per server (PS-path benches)\n"
      "  --fast   smoke subset: first two node counts, first bandwidth,\n"
      "           reduced iterations where applicable\n"
      "  --full   paper-sized configuration (where the bench has one)\n"
      "  --batch-egress  coalesce same-destination wire messages (egress\n"
      "           batcher ablation, where the bench supports it)\n"
      "  --transport=inproc|tcp|unix  bus backend; tcp/unix add a live\n"
      "           loopback socket-bandwidth measurement (supported benches)\n"
      "  --fault-loss=P1,P2,...     per-message loss rates to sweep\n"
      "  --fault-detect-ms=D1,...   failure-detection timeouts to sweep (ms)\n"
      "  --fault-restart-ms=R1,...  worker restart costs to sweep (ms)\n"
      "  --simd=auto|avx2|neon|scalar  SIMD dispatch level for the hot\n"
      "           kernels (default: POSEIDON_SIMD env, else CPUID)\n"
      "  --plan=paper|auto|fixed:<path.json>  communication plan source:\n"
      "           hand-picked paper defaults, the CommPlanner's joint search,\n"
      "           or a CommPlan JSON dump (planner-aware benches)\n"
      "  --json-out=PATH      write the bench result record as JSON\n"
      "  --trace-out=PATH     enable span tracing; export Chrome trace JSON\n"
      "  --metrics-json=PATH  export the process metrics registry as JSON\n",
      argv0);
}

}  // namespace

std::vector<int> BenchArgs::NodesOr(std::vector<int> defaults) const {
  if (!nodes.empty()) {
    return nodes;
  }
  if (fast && defaults.size() > 2) {
    defaults.resize(2);
  }
  return defaults;
}

std::vector<double> BenchArgs::GbpsOr(std::vector<double> defaults) const {
  if (!gbps.empty()) {
    return gbps;
  }
  if (fast && defaults.size() > 1) {
    defaults.resize(1);
  }
  return defaults;
}

std::vector<int> BenchArgs::ShardsOr(std::vector<int> defaults) const {
  if (!shards.empty()) {
    return shards;
  }
  if (fast && defaults.size() > 2) {
    defaults.resize(2);
  }
  return defaults;
}

int BenchArgs::FirstShardOr(int default_value) const {
  if (shards.empty()) {
    return default_value;
  }
  if (shards.size() > 1) {
    std::fprintf(stderr, "note: this bench runs one shard count; using --shards=%d\n",
                 shards.front());
  }
  return shards.front();
}

int BenchArgs::FirstNodeOr(int default_value) const {
  if (nodes.empty()) {
    return default_value;
  }
  if (nodes.size() > 1) {
    std::fprintf(stderr, "note: this bench runs one node count; using --nodes=%d\n",
                 nodes.front());
  }
  return nodes.front();
}

double BenchArgs::FirstGbpsOr(double default_value) const {
  if (gbps.empty()) {
    return default_value;
  }
  if (gbps.size() > 1) {
    std::fprintf(stderr, "note: this bench runs one bandwidth; using --gbps=%g\n",
                 gbps.front());
  }
  return gbps.front();
}

std::vector<double> BenchArgs::FaultLossOr(std::vector<double> defaults) const {
  if (!fault_loss.empty()) {
    return fault_loss;
  }
  if (fast && defaults.size() > 2) {
    defaults.resize(2);
  }
  return defaults;
}

std::vector<double> BenchArgs::FaultDetectMsOr(std::vector<double> defaults) const {
  if (!fault_detect_ms.empty()) {
    return fault_detect_ms;
  }
  if (fast && defaults.size() > 1) {
    defaults.resize(1);
  }
  return defaults;
}

std::vector<double> BenchArgs::FaultRestartMsOr(std::vector<double> defaults) const {
  if (!fault_restart_ms.empty()) {
    return fault_restart_ms;
  }
  if (fast && defaults.size() > 1) {
    defaults.resize(1);
  }
  return defaults;
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::string {
      std::string v = arg.substr(std::strlen(prefix));
      if (!v.empty() && v[0] == '=') {
        return v.substr(1);
      }
      if (v.empty() && i + 1 < argc) {
        return argv[++i];
      }
      return v;
    };
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else if (arg == "--fast") {
      args.fast = true;
    } else if (arg == "--full") {
      args.full = true;
    } else if (arg == "--batch-egress") {
      args.batch_egress = true;
    } else if (arg.rfind("--transport", 0) == 0) {
      args.transport = value_of("--transport");
      if (args.transport != "inproc" && args.transport != "tcp" &&
          args.transport != "unix") {
        std::fprintf(stderr, "invalid --transport value: '%s' (inproc|tcp|unix)\n",
                     args.transport.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--nodes", 0) == 0) {
      args.nodes = ParseList<int>("--nodes", value_of("--nodes"), [](const char* s, char** e) {
        return static_cast<int>(std::strtol(s, e, 10));
      });
    } else if (arg.rfind("--shards", 0) == 0) {
      args.shards =
          ParseList<int>("--shards", value_of("--shards"), [](const char* s, char** e) {
            return static_cast<int>(std::strtol(s, e, 10));
          });
    } else if (arg.rfind("--gbps", 0) == 0) {
      args.gbps = ParseList<double>("--gbps", value_of("--gbps"),
                                    [](const char* s, char** e) { return std::strtod(s, e); });
    } else if (arg.rfind("--fault-loss", 0) == 0) {
      args.fault_loss =
          ParseList<double>("--fault-loss", value_of("--fault-loss"),
                            [](const char* s, char** e) { return std::strtod(s, e); });
    } else if (arg.rfind("--fault-detect-ms", 0) == 0) {
      args.fault_detect_ms =
          ParseList<double>("--fault-detect-ms", value_of("--fault-detect-ms"),
                            [](const char* s, char** e) { return std::strtod(s, e); });
    } else if (arg.rfind("--fault-restart-ms", 0) == 0) {
      args.fault_restart_ms =
          ParseList<double>("--fault-restart-ms", value_of("--fault-restart-ms"),
                            [](const char* s, char** e) { return std::strtod(s, e); });
    } else if (arg.rfind("--simd", 0) == 0) {
      args.simd = value_of("--simd");
      if (!simd::SetLevelFromString(args.simd)) {
        std::fprintf(stderr, "invalid --simd value: '%s' (auto|avx2|neon|scalar)\n",
                     args.simd.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--plan", 0) == 0) {
      args.plan = value_of("--plan");
      if (args.plan != "paper" && args.plan != "auto" &&
          (args.plan.rfind("fixed:", 0) != 0 || args.plan.size() <= 6)) {
        std::fprintf(stderr,
                     "invalid --plan value: '%s' (paper|auto|fixed:<path.json>)\n",
                     args.plan.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--json-out", 0) == 0) {
      args.json_out = value_of("--json-out");
    } else if (arg.rfind("--trace-out", 0) == 0) {
      args.trace_out = value_of("--trace-out");
    } else if (arg.rfind("--metrics-json", 0) == 0) {
      args.metrics_json = value_of("--metrics-json");
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      std::exit(2);
    }
  }
  return args;
}

void InitBenchTelemetry(const BenchArgs& args) {
  if (!args.trace_out.empty()) {
    Tracer::Enable();
  }
}

void FinishBenchTelemetry(const BenchArgs& args, const BenchRecord* record) {
  if (!args.trace_out.empty()) {
    const Status written = Tracer::WriteChromeJson(args.trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", written.ToString().c_str());
    } else {
      std::fprintf(stderr, "trace: %s (%lld events, %lld dropped)\n",
                   args.trace_out.c_str(), static_cast<long long>(Tracer::recorded()),
                   static_cast<long long>(Tracer::dropped()));
    }
  }
  if (!args.metrics_json.empty()) {
    const Status written = MetricsRegistry::Default().WriteJson(args.metrics_json);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n", written.ToString().c_str());
    }
  }
  if (!args.json_out.empty() && record != nullptr) {
    const Status written = record->WriteJson(args.json_out);
    if (!written.ok()) {
      std::fprintf(stderr, "bench record export failed: %s\n", written.ToString().c_str());
    }
  }
}

}  // namespace poseidon

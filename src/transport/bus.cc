#include "src/transport/bus.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/stats/trace.h"
#include "src/transport/wire_format.h"

namespace poseidon {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MessageBus::MessageBus(int num_nodes)
    : limiters_(static_cast<size_t>(num_nodes)),
      tx_bytes_(static_cast<size_t>(num_nodes)),
      tx_messages_(static_cast<size_t>(num_nodes)),
      tx_entries_(static_cast<size_t>(num_nodes)) {
  CHECK_GT(num_nodes, 0);
  for (size_t n = 0; n < tx_bytes_.size(); ++n) {
    tx_bytes_[n].store(0);
    tx_messages_[n].store(0);
    tx_entries_[n].store(0);
  }
}

MessageBus::~MessageBus() {
  if (injector_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(pump_mutex_);
      pump_stop_ = true;
    }
    pump_cv_.notify_all();
    if (pump_thread_.joinable()) {
      pump_thread_.join();
    }
  }
  if (batching_.load(std::memory_order_acquire)) {
    for (auto& egress : egress_) {
      {
        std::lock_guard<std::mutex> lock(egress->mutex);
        egress->stop = true;
      }
      egress->cv.notify_all();
    }
    for (auto& egress : egress_) {
      if (egress->flusher.joinable()) {
        egress->flusher.join();
      }
    }
  }
}

std::shared_ptr<MessageBus::Mailbox> MessageBus::Register(const Address& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = mailboxes_.try_emplace(address, nullptr);
  if (inserted) {
    it->second = std::make_shared<Mailbox>();
  }
  return it->second;
}

Status MessageBus::Route(const Message& message, std::shared_ptr<Mailbox>* mailbox,
                         std::shared_ptr<RateLimiter>* limiter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mailboxes_.find(message.to);
  if (it == mailboxes_.end()) {
    return NotFoundError("no mailbox at node " + std::to_string(message.to.node) +
                         " port " + std::to_string(message.to.port));
  }
  *mailbox = it->second;
  // shared_ptr copy: a concurrent SetEgressLimit cannot invalidate the
  // limiter while a sender (or flusher) waits on it, and the wait itself
  // runs with no bus lock held.
  *limiter = limiters_[static_cast<size_t>(message.from.node)];
  return Status::Ok();
}

Status MessageBus::SendDirect(Message message, std::shared_ptr<Mailbox> mailbox,
                              std::shared_ptr<RateLimiter> limiter) {
  const int src = message.from.node;
  const bool remote = message.from.node != message.to.node;
  if (remote) {
    const int64_t bytes = message.WireBytes();
    if (limiter != nullptr) {
      limiter->Acquire(bytes);  // local traffic bypasses the NIC
    }
    tx_bytes_[static_cast<size_t>(src)].fetch_add(bytes, std::memory_order_relaxed);
    tx_messages_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
    tx_entries_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
    RecordLinkTx(src, message.to.node, bytes);
  }
  if (remote && injector_ != nullptr && message.type != MessageType::kShutdown) {
    InjectOrCommit(std::move(mailbox), std::move(message), /*attempt=*/0);
    return Status::Ok();  // the link layer retransmits; delivery is eventual
  }
  if (remote) {
    RecordLinkDelivery(message);
  }
  if (!mailbox->Push(std::move(message))) {
    return UnavailableError("mailbox closed");
  }
  return Status::Ok();
}

Status MessageBus::SendViaTransport(Message message,
                                    std::shared_ptr<RateLimiter> limiter) {
  const int src = message.from.node;
  const int64_t bytes = message.WireBytes();
  if (limiter != nullptr) {
    limiter->Acquire(bytes);
  }
  tx_bytes_[static_cast<size_t>(src)].fetch_add(bytes, std::memory_order_relaxed);
  tx_messages_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
  tx_entries_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
  RecordLinkTx(src, message.to.node, bytes);
  const int dst = message.to.node;
  return transport_->SendFrame(src, dst, EncodeMessageFrame(message));
}

Status MessageBus::Send(Message message) {
  const int src = message.from.node;
  CHECK_GE(src, 0);
  CHECK_LT(src, num_nodes());

  const bool wire_remote = IsWireRemote(message.to.node);
  std::shared_ptr<Mailbox> mailbox;
  std::shared_ptr<RateLimiter> limiter;
  if (wire_remote) {
    // The destination's mailboxes live in another process: no local routing,
    // the frame goes to the transport instead.
    CHECK(transport_->IsLocal(src))
        << "node " << src << " is not hosted by this process";
    // Always sequence remote data traffic over a wire: real sockets (and
    // the lossy shim especially) can duplicate and reorder records, and the
    // receiving bus's reorder buffer needs the stream order fixed at send
    // time. send_ns is NOT stamped — it would be meaningless on the
    // receiver's clock; DeliverWire restamps at ingress.
    if (message.type != MessageType::kShutdown) {
      message.seq = wire_sequencer_->NextSeq(message.from, message.to);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    limiter = limiters_[static_cast<size_t>(src)];
  } else {
    const Status routed = Route(message, &mailbox, &limiter);
    if (!routed.ok()) {
      return routed;
    }

    // Sequence every remote data message at send time: the stream order
    // fixed here is the order the receiver's reorder buffer will restore,
    // whatever the fault fabric does to the individual transmissions in
    // between.
    if (injector_ != nullptr && message.to.node != src &&
        message.type != MessageType::kShutdown) {
      message.seq = sequencer_->NextSeq(message.from, message.to);
    }

    // Stamp remote messages at bus accept so RecordLinkDelivery() can report
    // end-to-end delivery latency including batching queue time and injected
    // fault delays.
    if (message.to.node != src && link_stats_enabled()) {
      message.send_ns = SteadyNowNs();
    }
  }

  if (!batching_.load(std::memory_order_acquire)) {
    if (wire_remote) {
      return SendViaTransport(std::move(message), std::move(limiter));
    }
    return SendDirect(std::move(message), std::move(mailbox), std::move(limiter));
  }
  if (!wire_remote && message.to.node == src) {
    // Local traffic never batches (it never leaves the process).
    return SendDirect(std::move(message), std::move(mailbox), std::move(limiter));
  }

  NodeEgress& egress = *egress_[static_cast<size_t>(src)];
  const bool force_flush = message.type == MessageType::kShutdown;
  // Wake the flusher only when it has something new to react to: a batch
  // cut into the ready queue, or a fresh open batch whose aging timer it
  // must arm. Joining an existing open batch needs no wakeup.
  bool wake_flusher = false;
  {
    std::lock_guard<std::mutex> lock(egress.mutex);
    const int dst = message.to.node;
    Batch* batch = nullptr;
    for (Batch& open : egress.open) {
      if (open.dst_node == dst) {
        batch = &open;
        break;
      }
    }
    if (batch != nullptr && batch->iter != message.iter) {
      // Iteration boundary: cut the old batch first so per-destination FIFO
      // order is preserved.
      egress.ready.push_back(std::move(*batch));
      egress.open.erase(egress.open.begin() + (batch - egress.open.data()));
      batch = nullptr;
      wake_flusher = true;
    }
    if (batch == nullptr) {
      Batch fresh;
      fresh.dst_node = dst;
      fresh.iter = message.iter;
      fresh.opened = std::chrono::steady_clock::now();
      egress.open.push_back(std::move(fresh));
      batch = &egress.open.back();
      wake_flusher = true;
    }
    batch->payload_bytes += kBatchEntryHeaderBytes + message.PayloadBytes();
    batch->entries.emplace_back(std::move(mailbox), std::move(message));
    if (force_flush ||
        static_cast<int>(batch->entries.size()) >= batch_options_.max_batch_messages ||
        batch->payload_bytes >= batch_options_.max_batch_bytes) {
      egress.ready.push_back(std::move(*batch));
      egress.open.erase(egress.open.begin() + (batch - egress.open.data()));
      wake_flusher = true;
    }
  }
  if (wake_flusher) {
    egress.cv.notify_all();
  }
  return Status::Ok();
}

void MessageBus::EnableBatching(const EgressBatchOptions& options) {
  CHECK(!batching_.load(std::memory_order_acquire)) << "batching already enabled";
  CHECK_GT(options.max_batch_messages, 0);
  CHECK_GT(options.max_batch_bytes, 0);
  CHECK_GT(options.flush_interval_us, 0);
  batch_options_ = options;
  egress_.resize(static_cast<size_t>(num_nodes()));
  for (int n = 0; n < num_nodes(); ++n) {
    egress_[static_cast<size_t>(n)] = std::make_unique<NodeEgress>();
  }
  batching_.store(true, std::memory_order_release);
  for (int n = 0; n < num_nodes(); ++n) {
    egress_[static_cast<size_t>(n)]->flusher = std::thread([this, n] { FlusherLoop(n); });
  }
}

void MessageBus::DeliverBatch(int src, Batch batch) {
  TraceSpan span("bus.deliver_batch", "transport",
                 static_cast<int64_t>(batch.entries.size()));
  const int64_t bytes = kWireFrameBytes + batch.payload_bytes;
  std::shared_ptr<RateLimiter> limiter;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    limiter = limiters_[static_cast<size_t>(src)];
  }
  if (limiter != nullptr) {
    limiter->Acquire(bytes);
  }
  tx_bytes_[static_cast<size_t>(src)].fetch_add(bytes, std::memory_order_relaxed);
  tx_messages_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
  tx_entries_[static_cast<size_t>(src)].fetch_add(
      static_cast<int64_t>(batch.entries.size()), std::memory_order_relaxed);
  RecordLinkTx(src, batch.dst_node, bytes);
  if (IsWireRemote(batch.dst_node)) {
    // The whole batch crosses the process boundary as one frame — the exact
    // framing the accounting above just charged.
    std::vector<Message> entries;
    entries.reserve(batch.entries.size());
    for (auto& [mailbox, message] : batch.entries) {
      entries.push_back(std::move(message));
    }
    std::vector<uint8_t> frame = EncodeBatchFrame(entries);
    CHECK_EQ(static_cast<int64_t>(frame.size()), bytes);
    const Status status =
        transport_->SendFrame(src, batch.dst_node, std::move(frame));
    if (!status.ok()) {
      // Mirrors the closed-mailbox case below: the senders are long gone,
      // so a dead peer connection can only be reported loudly.
      LOG(Warning) << "egress batch from node " << src << " to node "
                   << batch.dst_node << " lost: " << status.ToString();
    }
    return;
  }
  for (auto& [mailbox, message] : batch.entries) {
    const MessageType type = message.type;
    if (injector_ != nullptr && type != MessageType::kShutdown) {
      // Chaos weather applies per logical message even inside a batched
      // frame (accounting already happened above, once per frame).
      InjectOrCommit(std::move(mailbox), std::move(message), /*attempt=*/0);
      continue;
    }
    RecordLinkDelivery(message);
    if (!mailbox->Push(std::move(message)) && type != MessageType::kShutdown) {
      // The unbatched path surfaces this as UnavailableError to the
      // sender; here the sender is long gone, so make the drop loud —
      // outside teardown it means a receiver will wait forever.
      LOG(Warning) << "egress batch from node " << src
                   << " dropped a message for a closed mailbox";
    }
  }
}

// ---------------------------------------------------------- transport seam --

void MessageBus::AttachTransport(std::shared_ptr<Transport> transport) {
  CHECK(transport != nullptr);
  CHECK(transport_ == nullptr) << "transport already attached";
  CHECK(injector_ == nullptr)
      << "in-process fault injection and a wire transport are mutually "
         "exclusive (use the transport's lossy shim for cross-process chaos)";
  wire_sequencer_ = std::make_unique<StreamSequencer>();
  wire_counters_ = std::make_unique<FaultCounters>();
  wire_reorder_ = std::make_unique<ReorderBuffer>(wire_counters_.get());
  transport_ = std::move(transport);
}

Status MessageBus::DeliverWire(const uint8_t* data, int64_t size) {
  CHECK(transport_ != nullptr) << "DeliverWire requires AttachTransport";
  std::vector<Message> messages;
  Status status = DecodeWireFrame(data, size, &messages);
  if (!status.ok()) {
    return status;
  }
  if (messages.empty()) {
    return Status::Ok();
  }
  // Every message of a frame shares (from node, to node) — the batch
  // invariant — so one bounds check and one link-accounting add cover all.
  const int src = messages.front().from.node;
  const int dst = messages.front().to.node;
  if (src < 0 || src >= num_nodes() || dst < 0 || dst >= num_nodes()) {
    return InvalidArgumentError("wire frame addressed outside this cluster: " +
                                std::to_string(src) + " -> " +
                                std::to_string(dst));
  }
  // Ingress-side link accounting: the sending bus records links whose source
  // it hosts, this bus records links arriving from remote sources — one bus
  // never counts a (src, dst) pair from both sides.
  RecordLinkTx(src, dst, size);
  const int64_t now_ns = link_stats_enabled() ? SteadyNowNs() : 0;
  for (Message& m : messages) {
    // Receiver-side restamp: delivery latency is measured ingress-to-push on
    // this process's steady clock. Two processes' steady clocks have
    // unrelated epochs, so the sender's stamp must never be compared here.
    m.send_ns = now_ns;
    std::vector<Message> released;
    if (m.seq >= 0) {
      wire_reorder_->Admit(std::move(m), &released);
    } else {
      released.push_back(std::move(m));
    }
    for (Message& ready : released) {
      std::shared_ptr<Mailbox> target;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = mailboxes_.find(ready.to);
        if (it != mailboxes_.end()) {
          target = it->second;
        }
      }
      const MessageType type = ready.type;
      if (target == nullptr) {
        // The endpoint died (or was never registered here): the message is
        // lost exactly as on a dead socket; count it so tests can see.
        if (type != MessageType::kShutdown) {
          wire_counters_->AddDroppedReply();
        }
        continue;
      }
      RecordLinkDelivery(ready);
      if (!target->Push(std::move(ready)) && type != MessageType::kShutdown) {
        wire_counters_->AddDroppedReply();
      }
    }
  }
  return Status::Ok();
}

FaultCountersSnapshot MessageBus::WireCounters() const {
  if (wire_counters_ == nullptr) {
    return FaultCountersSnapshot{};
  }
  return wire_counters_->Snapshot();
}

// ------------------------------------------------------------ fault fabric --

void MessageBus::EnableFaultInjection(const FaultPlan& plan) {
  CHECK(injector_ == nullptr) << "fault injection already enabled";
  CHECK(transport_ == nullptr)
      << "in-process fault injection and a wire transport are mutually "
         "exclusive (use the transport's lossy shim for cross-process chaos)";
  injector_ = std::make_unique<FaultInjector>(plan);
  sequencer_ = std::make_unique<StreamSequencer>();
  reorder_ = std::make_unique<ReorderBuffer>(&injector_->counters());
  pump_thread_ = std::thread([this] { PumpLoop(); });
}

void MessageBus::InjectOrCommit(std::shared_ptr<Mailbox> mailbox, Message message,
                                int attempt) {
  FaultCounters& counters = injector_->counters();
  if (injector_->IsPartitioned(message.from.node, message.to.node)) {
    counters.AddPartitionHold();
    TimedDelivery held;
    held.mailbox = std::move(mailbox);
    held.message = std::move(message);
    held.attempt = attempt;
    {
      std::lock_guard<std::mutex> lock(pump_mutex_);
      partition_held_.push_back(std::move(held));
    }
    pump_cv_.notify_all();  // arms the periodic partition recheck
    return;
  }
  const FaultDecision decision = injector_->Decide(message, attempt);
  const auto now = std::chrono::steady_clock::now();
  if (decision.drop) {
    // Lost on the wire; the modeled reliable link layer retransmits the
    // same sequence number after the RTO, rolling fresh dice.
    counters.AddDrop();
    TimedDelivery retx;
    retx.due = now + std::chrono::microseconds(injector_->plan().retransmit_timeout_us);
    retx.mailbox = std::move(mailbox);
    retx.message = std::move(message);
    retx.attempt = attempt + 1;
    retx.commit_only = false;
    SchedulePumped(std::move(retx));
    return;
  }
  if (decision.duplicate) {
    counters.AddDuplicate();
    TimedDelivery copy;
    copy.due = now + std::chrono::microseconds(injector_->plan().duplicate_lag_us);
    copy.mailbox = mailbox;
    copy.message = message;  // same seq: the receiver will deduplicate
    copy.attempt = attempt;
    copy.commit_only = true;
    SchedulePumped(std::move(copy));
  }
  if (decision.delay_us > 0) {
    counters.AddDelay();
    TimedDelivery delayed;
    delayed.due = now + std::chrono::microseconds(decision.delay_us);
    delayed.mailbox = std::move(mailbox);
    delayed.message = std::move(message);
    delayed.attempt = attempt;
    delayed.commit_only = true;
    SchedulePumped(std::move(delayed));
    return;
  }
  Commit(mailbox, std::move(message));
}

void MessageBus::Commit(const std::shared_ptr<Mailbox>& mailbox, Message message) {
  const MessageType type = message.type;
  std::vector<Message> released;
  reorder_->Admit(std::move(message), &released);
  if (released.empty()) {
    return;
  }
  // Deliver to the destination's *current* mailbox, looked up at release
  // time: between send (or parking in the reorder buffer) and now the
  // endpoint may have died and been re-registered (crash recovery), and the
  // mailbox captured at send time could belong to the dead incarnation.
  // Every message of a released run shares one stream, hence one address.
  std::shared_ptr<Mailbox> target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(released.front().to);
    if (it != mailboxes_.end()) {
      target = it->second;
    }
  }
  if (target == nullptr) {
    target = mailbox;  // unregistered: the endpoint is gone; fall through
  }
  for (Message& ready : released) {
    RecordLinkDelivery(ready);
    if (!target->Push(std::move(ready)) && type != MessageType::kShutdown) {
      // The endpoint died between send and delivery (crash window): the
      // message is lost, as it would be on a real dead socket. Recovery
      // re-pushes; the shard reconciles.
      injector_->counters().AddDroppedReply();
    }
  }
}

void MessageBus::SchedulePumped(TimedDelivery delivery) {
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    delivery.order = pump_order_++;
    pump_queue_.push(std::move(delivery));
  }
  pump_cv_.notify_all();
}

void MessageBus::PumpLoop() {
  constexpr auto kPartitionRecheck = std::chrono::microseconds(200);
  std::unique_lock<std::mutex> lock(pump_mutex_);
  while (true) {
    if (pump_stop_) {
      break;
    }
    if (pump_queue_.empty()) {
      pump_idle_cv_.notify_all();  // FlushFaults waiters (held traffic excluded)
    }
    if (pump_queue_.empty() && partition_held_.empty()) {
      pump_cv_.wait(lock, [&] {
        return pump_stop_ || !pump_queue_.empty() || !partition_held_.empty();
      });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    // Replay parked traffic whose partition healed (in park order; the
    // reorder buffer fixes any residual interleaving).
    std::vector<TimedDelivery> replay;
    for (size_t i = 0; i < partition_held_.size();) {
      TimedDelivery& held = partition_held_[i];
      if (!injector_->IsPartitioned(held.message.from.node, held.message.to.node)) {
        replay.push_back(std::move(held));
        partition_held_.erase(partition_held_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    if (!pump_queue_.empty() && pump_queue_.top().due <= now) {
      TimedDelivery due = pump_queue_.top();
      pump_queue_.pop();
      replay.push_back(std::move(due));
    }
    if (replay.empty()) {
      // Nothing due: sleep until the next deadline (or the partition
      // recheck tick while anything is parked).
      auto wake = now + std::chrono::hours(24);
      if (!pump_queue_.empty()) {
        wake = std::min(wake, pump_queue_.top().due);
      }
      if (!partition_held_.empty()) {
        wake = std::min(wake, now + kPartitionRecheck);
      }
      pump_cv_.wait_until(lock, wake, [&] {
        // Also wake early when a fresher item undercuts the deadline.
        return pump_stop_ || (!pump_queue_.empty() && pump_queue_.top().due < wake);
      });
      continue;
    }
    ++pump_busy_;
    lock.unlock();
    for (TimedDelivery& item : replay) {
      if (item.commit_only) {
        Commit(item.mailbox, std::move(item.message));
      } else {
        if (item.attempt > 0) {
          injector_->counters().AddRetransmit();
        }
        InjectOrCommit(std::move(item.mailbox), std::move(item.message), item.attempt);
      }
    }
    lock.lock();
    --pump_busy_;
  }
}

void MessageBus::FlushFaults() {
  if (injector_ == nullptr) {
    return;
  }
  std::unique_lock<std::mutex> lock(pump_mutex_);
  pump_cv_.notify_all();
  pump_idle_cv_.wait(lock, [&] {
    if (pump_stop_) {
      return true;
    }
    if (!pump_queue_.empty() || pump_busy_ > 0) {
      return false;
    }
    // Held traffic only blocks the flush while its partition has healed but
    // the pump has not replayed it yet; traffic behind a live partition is
    // excluded by contract.
    for (const TimedDelivery& held : partition_held_) {
      if (!injector_->IsPartitioned(held.message.from.node, held.message.to.node)) {
        return false;
      }
    }
    return true;
  });
}

void MessageBus::Partition(int a, int b) {
  CHECK(injector_ != nullptr) << "Partition requires EnableFaultInjection";
  injector_->Partition(a, b);
}

void MessageBus::HealPartitions() {
  CHECK(injector_ != nullptr) << "HealPartitions requires EnableFaultInjection";
  injector_->HealAll();
  pump_cv_.notify_all();
}

bool MessageBus::AwaitPartitionHolds(int64_t n, int timeout_ms) {
  if (injector_ == nullptr) {
    return false;
  }
  std::unique_lock<std::mutex> lock(pump_mutex_);
  // InjectOrCommit bumps the counter before notifying the pump, so the
  // predicate observes every hold.
  return pump_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return injector_->Counters().partition_holds >= n;
  });
}

void MessageBus::CloseEndpoints(int node, int min_port, int max_port) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = mailboxes_.begin(); it != mailboxes_.end();) {
    if (it->first.node == node && it->first.port >= min_port &&
        it->first.port < max_port) {
      it->second->Close();
      it = mailboxes_.erase(it);
    } else {
      ++it;
    }
  }
}

void MessageBus::FlusherLoop(int node) {
  NodeEgress& egress = *egress_[static_cast<size_t>(node)];
  const auto interval = std::chrono::microseconds(batch_options_.flush_interval_us);
  std::unique_lock<std::mutex> lock(egress.mutex);
  while (true) {
    if (egress.stop && egress.ready.empty() && egress.open.empty()) {
      break;
    }
    if (egress.ready.empty()) {
      if (egress.open.empty()) {
        if (egress.flush_requested && egress.delivering == 0) {
          egress.flush_requested = false;
          egress.idle_cv.notify_all();
        }
        egress.cv.wait(lock, [&] {
          return egress.stop || egress.flush_requested || !egress.ready.empty() ||
                 !egress.open.empty();
        });
        continue;
      }
      // Let young open batches age up to the flush interval before cutting
      // them (unless a flush/stop wants everything out now).
      if (!egress.stop && !egress.flush_requested) {
        auto earliest = egress.open.front().opened;
        for (const Batch& open : egress.open) {
          earliest = std::min(earliest, open.opened);
        }
        egress.cv.wait_until(lock, earliest + interval, [&] {
          return egress.stop || egress.flush_requested || !egress.ready.empty();
        });
      }
      const auto now = std::chrono::steady_clock::now();
      for (size_t i = 0; i < egress.open.size();) {
        if (egress.stop || egress.flush_requested || now - egress.open[i].opened >= interval) {
          egress.ready.push_back(std::move(egress.open[i]));
          egress.open.erase(egress.open.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }
    while (!egress.ready.empty()) {
      Batch batch = std::move(egress.ready.front());
      egress.ready.pop_front();
      ++egress.delivering;
      lock.unlock();
      DeliverBatch(node, std::move(batch));
      lock.lock();
      --egress.delivering;
    }
    if (egress.flush_requested && egress.open.empty() && egress.ready.empty() &&
        egress.delivering == 0) {
      egress.flush_requested = false;
      egress.idle_cv.notify_all();
    }
  }
}

void MessageBus::FlushEgress() {
  if (!batching_.load(std::memory_order_acquire)) {
    if (transport_ != nullptr) {
      transport_->Flush();
    }
    return;
  }
  for (auto& egress_ptr : egress_) {
    NodeEgress& egress = *egress_ptr;
    std::unique_lock<std::mutex> lock(egress.mutex);
    if (egress.open.empty() && egress.ready.empty() && egress.delivering == 0) {
      continue;
    }
    egress.flush_requested = true;
    egress.cv.notify_all();
    egress.idle_cv.wait(lock, [&] {
      return !egress.flush_requested ||
             (egress.open.empty() && egress.ready.empty() && egress.delivering == 0);
    });
  }
  if (transport_ != nullptr) {
    // Batches are cut and encoded; now drain the transport's own egress
    // queues so the bytes actually leave the process.
    transport_->Flush();
  }
}

void MessageBus::SetEgressLimit(int node, double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  if (bytes_per_sec <= 0.0) {
    limiters_[static_cast<size_t>(node)].reset();
  } else {
    limiters_[static_cast<size_t>(node)] = std::make_shared<RateLimiter>(bytes_per_sec);
  }
}

std::shared_ptr<RateLimiter> MessageBus::egress_limiter(int node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return limiters_[static_cast<size_t>(node)];
}

void MessageBus::EnableLinkStats() {
  if (link_stats_enabled()) {
    return;
  }
  const size_t n = static_cast<size_t>(num_nodes());
  link_cells_.resize(n * n);
  for (auto& cell : link_cells_) {
    cell = std::make_unique<LinkCell>();
  }
  link_stats_since_ = std::chrono::steady_clock::now();
  link_delta_bytes_seen_.assign(n * n, 0);
  link_delta_messages_seen_.assign(n * n, 0);
  link_delta_since_ = link_stats_since_;
  link_stats_enabled_.store(true, std::memory_order_release);
}

void MessageBus::RecordLinkTx(int src, int dst, int64_t bytes) {
  if (!link_stats_enabled()) {
    return;
  }
  LinkCell& cell = *link_cells_[static_cast<size_t>(src) *
                                    static_cast<size_t>(num_nodes()) +
                                static_cast<size_t>(dst)];
  cell.bytes.fetch_add(bytes, std::memory_order_relaxed);
  cell.messages.fetch_add(1, std::memory_order_relaxed);
}

void MessageBus::RecordLinkDelivery(const Message& message) {
  if (!link_stats_enabled() || message.send_ns <= 0 ||
      message.from.node == message.to.node) {
    return;
  }
  const int64_t latency = SteadyNowNs() - message.send_ns;
  LinkCell& cell = *link_cells_[static_cast<size_t>(message.from.node) *
                                    static_cast<size_t>(num_nodes()) +
                                static_cast<size_t>(message.to.node)];
  cell.latency_ns.Record(latency > 0 ? latency : 0);
}

ObservedLinkStats MessageBus::SnapshotLinkStats() const {
  ObservedLinkStats snap;
  if (!link_stats_enabled()) {
    return snap;
  }
  const double window_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - link_stats_since_)
          .count();
  snap.window_s = window_s;
  const int n = num_nodes();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      const LinkCell& cell =
          *link_cells_[static_cast<size_t>(src) * static_cast<size_t>(n) +
                       static_cast<size_t>(dst)];
      const int64_t bytes = cell.bytes.load(std::memory_order_relaxed);
      const int64_t messages = cell.messages.load(std::memory_order_relaxed);
      if (bytes == 0 && messages == 0) {
        continue;
      }
      LinkStat link;
      link.src = src;
      link.dst = dst;
      link.bytes = bytes;
      link.messages = messages;
      link.delivery_latency_ns = cell.latency_ns.TakeSnapshot();
      link.observed_gbps =
          window_s > 0.0 ? static_cast<double>(bytes) * 8.0 / 1e9 / window_s : 0.0;
      snap.links.push_back(std::move(link));
    }
  }
  return snap;
}

ObservedLinkStats MessageBus::SnapshotLinkStatsDelta() {
  ObservedLinkStats snap;
  if (!link_stats_enabled()) {
    return snap;
  }
  std::lock_guard<std::mutex> lock(link_delta_mutex_);
  const auto now = std::chrono::steady_clock::now();
  const double window_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(now -
                                                                link_delta_since_)
          .count();
  link_delta_since_ = now;
  snap.window_s = window_s;
  const int n = num_nodes();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      const size_t idx =
          static_cast<size_t>(src) * static_cast<size_t>(n) + static_cast<size_t>(dst);
      const LinkCell& cell = *link_cells_[idx];
      const int64_t bytes =
          cell.bytes.load(std::memory_order_relaxed) - link_delta_bytes_seen_[idx];
      const int64_t messages = cell.messages.load(std::memory_order_relaxed) -
                               link_delta_messages_seen_[idx];
      link_delta_bytes_seen_[idx] += bytes;
      link_delta_messages_seen_[idx] += messages;
      if (bytes == 0 && messages == 0) {
        continue;
      }
      LinkStat link;
      link.src = src;
      link.dst = dst;
      link.bytes = bytes;
      link.messages = messages;
      link.delivery_latency_ns = cell.latency_ns.TakeSnapshot();
      link.observed_gbps =
          window_s > 0.0 ? static_cast<double>(bytes) * 8.0 / 1e9 / window_s : 0.0;
      snap.links.push_back(std::move(link));
    }
  }
  return snap;
}

std::vector<int64_t> MessageBus::TxBytes() const {
  std::vector<int64_t> out(tx_bytes_.size());
  for (size_t i = 0; i < tx_bytes_.size(); ++i) {
    out[i] = tx_bytes_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxBytes(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_bytes_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

std::vector<int64_t> MessageBus::TxMessages() const {
  std::vector<int64_t> out(tx_messages_.size());
  for (size_t i = 0; i < tx_messages_.size(); ++i) {
    out[i] = tx_messages_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxMessages(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_messages_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

std::vector<int64_t> MessageBus::TxEntries() const {
  std::vector<int64_t> out(tx_entries_.size());
  for (size_t i = 0; i < tx_entries_.size(); ++i) {
    out[i] = tx_entries_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxEntries(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_entries_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

void MessageBus::ResetTraffic() {
  for (size_t n = 0; n < tx_bytes_.size(); ++n) {
    tx_bytes_[n].store(0, std::memory_order_relaxed);
    tx_messages_[n].store(0, std::memory_order_relaxed);
    tx_entries_[n].store(0, std::memory_order_relaxed);
  }
}

void MessageBus::CloseAll() {
  FlushEgress();
  FlushFaults();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [address, mailbox] : mailboxes_) {
    mailbox->Close();
  }
}

}  // namespace poseidon

#include "src/transport/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/simd/quant.h"
#include "src/simd/vec.h"
#include "src/stats/trace.h"

namespace poseidon {
namespace {

// Per-dimension sanity bound for wire input: any frame claiming a single
// dimension beyond this is corrupt, not large (the biggest paper layer
// dimension is 25088). Keeping every dimension below 2^27 also makes all
// downstream size products overflow-free in int64.
constexpr int64_t kMaxWireDim = int64_t{1} << 27;

// Integers are carried in float words bit-cast with memcpy; the words are
// never read as floats, so the bit patterns (which may be NaNs) are inert.
void StoreWord(float* dst, uint32_t value) { std::memcpy(dst, &value, sizeof(value)); }

uint32_t LoadWord(const float* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

Status Truncated(const char* codec, int64_t want, int64_t got) {
  return OutOfRangeError(std::string(codec) + " frame truncated: need " +
                         std::to_string(want) + " words, have " + std::to_string(got));
}

Status BadDim(const char* codec, int64_t value) {
  return InvalidArgumentError(std::string(codec) + " frame has invalid dimension " +
                              std::to_string(value));
}

// Reads a header word as a non-negative bounded int64, or fails.
StatusOr<int64_t> HeaderDim(const char* codec, const PayloadView& frame, int64_t word) {
  if (word >= frame.size()) {
    return Truncated(codec, word + 1, frame.size());
  }
  const int64_t value = static_cast<int64_t>(static_cast<int32_t>(LoadWord(frame.data() + word)));
  if (value < 0 || value > kMaxWireDim) {
    return BadDim(codec, value);
  }
  return value;
}

// a * b, or failure when the product would leave the sane frame-size range.
// Every factor a Parse multiplies has already passed HeaderDim's kMaxWireDim
// bound, so the products below cannot wrap int64_t — but checking here keeps
// the invariant local: a hostile header is rejected by arithmetic, not by an
// argument about bounds established elsewhere.
StatusOr<int64_t> CheckedMul(const char* codec, int64_t a, int64_t b) {
  if (a < 0 || b < 0 || (b != 0 && a > (int64_t{1} << 62) / b)) {
    return InvalidArgumentError(std::string(codec) + " frame size overflows: " +
                                std::to_string(a) + " * " + std::to_string(b));
  }
  return a * b;
}

// Copies a frame's bias trailer (possibly empty) into the caller's vector.
// An empty PayloadView has no storage, so this must not touch data().
void AssignBias(const PayloadView& view, std::vector<float>* bias) {
  bias->clear();
  if (view.size() > 0) {
    bias->assign(view.data(), view.data() + view.size());
  }
}

}  // namespace

const char* WireCodecName(WireCodec id) {
  switch (id) {
    case WireCodec::kRawFloat:
      return "raw_float";
    case WireCodec::kOneBit:
      return "onebit";
    case WireCodec::kSufficientFactor:
      return "sufficient_factor";
    case WireCodec::kFp16:
      return "fp16";
    case WireCodec::kInt8:
      return "int8";
    case WireCodec::kTopK:
      return "topk";
  }
  return "?";
}

uint32_t QuantSeed(int layer_index, int64_t clock) {
  // A fixed base split per layer then per clock: the same derivation on
  // every worker, every backend, every rerun.
  Rng rng = Rng(UINT64_C(0x9e3779b97f4a7c15))
                .Split(static_cast<uint64_t>(layer_index))
                .Split(static_cast<uint64_t>(clock));
  return static_cast<uint32_t>(rng.Next());
}

// ----------------------------------------------------------------- raw float

StatusOr<int64_t> RawFloatCodec::Validate(const PayloadView& frame) const {
  if (!frame.valid() && frame.size() != 0) {
    return InvalidArgumentError("raw_float frame is invalid");
  }
  return frame.size();
}

Status RawFloatCodec::Decode(const PayloadView& frame, Tensor* dense,
                             std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<int64_t> floats = Validate(frame);
  if (!floats.ok()) {
    return floats.status();
  }
  if (*floats == 0) {
    *dense = Tensor();
  } else {
    *dense = Tensor({*floats});
    std::copy(frame.data(), frame.data() + *floats, dense->data());
    WireCopyStats::Add(*floats);
  }
  if (bias != nullptr) {
    bias->clear();
  }
  return Status::Ok();
}

Payload RawFloatCodec::Encode(const float* src, int64_t floats) {
  TraceSpan span("codec.encode.raw", "codec", floats);
  Payload payload = Payload::Allocate(floats);
  if (floats > 0) {
    CHECK_NOTNULL(src);
    std::copy(src, src + floats, payload.data());
    WireCopyStats::Add(floats);
  }
  return payload;
}

// --------------------------------------------------------------------- 1-bit

namespace {
constexpr int64_t kOneBitHeaderWords = 3;

int64_t OneBitSignWords(int64_t rows, int64_t cols) { return (rows * cols + 31) / 32; }
}  // namespace

uint32_t OneBitCodec::Frame::word(int64_t i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, words.size());
  return LoadWord(words.data() + i);
}

StatusOr<OneBitCodec::Frame> OneBitCodec::Parse(const PayloadView& frame) {
  StatusOr<int64_t> rows = HeaderDim("onebit", frame, 0);
  if (!rows.ok()) return rows.status();
  StatusOr<int64_t> cols = HeaderDim("onebit", frame, 1);
  if (!cols.ok()) return cols.status();
  StatusOr<int64_t> bias_len = HeaderDim("onebit", frame, 2);
  if (!bias_len.ok()) return bias_len.status();
  // A tensor dimension of zero is never produced by an encoder; reject it
  // so decode targets always have constructible shapes. The per-dimension
  // bound in HeaderDim keeps rows * cols overflow-free.
  if (*rows < 1) return BadDim("onebit", *rows);
  if (*cols < 1) return BadDim("onebit", *cols);
  const int64_t sign_words = OneBitSignWords(*rows, *cols);
  const int64_t want = kOneBitHeaderWords + sign_words + 2 * *cols + *bias_len;
  if (frame.size() != want) {
    return want > frame.size() ? Truncated("onebit", want, frame.size())
                               : InvalidArgumentError(
                                     "onebit frame has " + std::to_string(frame.size()) +
                                     " words, expected " + std::to_string(want));
  }
  Frame parsed;
  parsed.rows = *rows;
  parsed.cols = *cols;
  parsed.bias_len = *bias_len;
  int64_t cursor = kOneBitHeaderWords;
  parsed.words = frame.Sub(cursor, sign_words);
  cursor += sign_words;
  parsed.positive_level = frame.Sub(cursor, *cols);
  cursor += *cols;
  parsed.negative_level = frame.Sub(cursor, *cols);
  cursor += *cols;
  parsed.bias = frame.Sub(cursor, *bias_len);
  return parsed;
}

StatusOr<int64_t> OneBitCodec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->rows * parsed->cols;
}

Status OneBitCodec::DecodeDense(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.onebit", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  // Stage the packed sign words out of the slab once (compressed size, 1/32
  // of dense), then reconstruct exactly as OneBitQuantizer::Decode does.
  std::vector<uint32_t> bits(static_cast<size_t>(f.words.size()));
  if (!bits.empty()) {
    std::memcpy(bits.data(), f.words.data(), bits.size() * sizeof(uint32_t));
    WireCopyStats::Add(f.words.size());
  }
  *out = Tensor({f.rows, f.cols});
  simd::OneBitDecode(bits.data(), f.positive_level.data(), f.negative_level.data(),
                     f.rows, f.cols, out->data());
  return Status::Ok();
}

Status OneBitCodec::Decode(const PayloadView& frame, Tensor* dense,
                           std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Status status = DecodeDense(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    AssignBias(parsed->bias, bias);
  }
  return Status::Ok();
}

Payload OneBitCodec::Encode(const Tensor& gradient, OneBitQuantizer* quantizer,
                            const float* bias, int64_t bias_len) {
  TraceSpan span("codec.encode.onebit", "codec");
  CHECK_NOTNULL(quantizer);
  CHECK_GE(bias_len, 0);
  const OneBitEncoded encoded = quantizer->Encode(gradient);
  const int64_t sign_words = static_cast<int64_t>(encoded.bits.size());
  CHECK_EQ(sign_words, OneBitSignWords(encoded.rows, encoded.cols));
  const int64_t total =
      kOneBitHeaderWords + sign_words + 2 * encoded.cols + bias_len;
  Payload payload = Payload::Allocate(total);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(encoded.rows));
  StoreWord(words + 1, static_cast<uint32_t>(encoded.cols));
  StoreWord(words + 2, static_cast<uint32_t>(bias_len));
  int64_t cursor = kOneBitHeaderWords;
  if (sign_words > 0) {
    std::memcpy(words + cursor, encoded.bits.data(),
                static_cast<size_t>(sign_words) * sizeof(uint32_t));
  }
  cursor += sign_words;
  std::copy(encoded.positive_level.begin(), encoded.positive_level.end(), words + cursor);
  cursor += encoded.cols;
  std::copy(encoded.negative_level.begin(), encoded.negative_level.end(), words + cursor);
  cursor += encoded.cols;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add(sign_words + 2 * encoded.cols + bias_len);
  return payload;
}

// --------------------------------------------------------- sufficient factor

namespace {
constexpr int64_t kSfHeaderWords = 4;
}  // namespace

StatusOr<SufficientFactorCodec::Frame> SufficientFactorCodec::Parse(
    const PayloadView& frame) {
  StatusOr<int64_t> m = HeaderDim("sufficient_factor", frame, 0);
  if (!m.ok()) return m.status();
  StatusOr<int64_t> n = HeaderDim("sufficient_factor", frame, 1);
  if (!n.ok()) return n.status();
  StatusOr<int64_t> k = HeaderDim("sufficient_factor", frame, 2);
  if (!k.ok()) return k.status();
  StatusOr<int64_t> bias_len = HeaderDim("sufficient_factor", frame, 3);
  if (!bias_len.ok()) return bias_len.status();
  if (*m < 1) return BadDim("sufficient_factor", *m);
  if (*n < 1) return BadDim("sufficient_factor", *n);
  if (*k < 1) return BadDim("sufficient_factor", *k);
  StatusOr<int64_t> factors = CheckedMul("sufficient_factor", *m + *n, *k);
  if (!factors.ok()) return factors.status();
  const int64_t want = kSfHeaderWords + *factors + *bias_len;
  if (frame.size() != want) {
    return want > frame.size()
               ? Truncated("sufficient_factor", want, frame.size())
               : InvalidArgumentError("sufficient_factor frame has " +
                                      std::to_string(frame.size()) + " words, expected " +
                                      std::to_string(want));
  }
  Frame parsed;
  parsed.m = *m;
  parsed.n = *n;
  parsed.k = *k;
  parsed.bias_len = *bias_len;
  int64_t cursor = kSfHeaderWords;
  parsed.u = frame.Sub(cursor, *m * *k);
  cursor += *m * *k;
  parsed.v = frame.Sub(cursor, *n * *k);
  cursor += *n * *k;
  parsed.bias = frame.Sub(cursor, *bias_len);
  return parsed;
}

StatusOr<int64_t> SufficientFactorCodec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->m * parsed->n;
}

Status SufficientFactorCodec::DecodeReconstruct(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.sf", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  if (out->ndim() != 2 || out->dim(0) != f.m || out->dim(1) != f.n) {
    return InvalidArgumentError("sufficient_factor reconstruction target is " +
                                out->ShapeString() + ", frame is " + std::to_string(f.m) +
                                "x" + std::to_string(f.n));
  }
  // U V^T with GemmTransB's exact loop order, reading straight from the
  // slab: bitwise identical to ReconstructGradient on unserialized factors.
  const float* u = f.u.size() > 0 ? f.u.data() : nullptr;
  const float* v = f.v.size() > 0 ? f.v.data() : nullptr;
  float* od = out->data();
  for (int64_t i = 0; i < f.m; ++i) {
    const float* u_row = u + i * f.k;
    float* o_row = od + i * f.n;
    for (int64_t j = 0; j < f.n; ++j) {
      const float* v_row = v + j * f.k;
      float acc = 0.0f;
      for (int64_t p = 0; p < f.k; ++p) {
        acc += u_row[p] * v_row[p];
      }
      o_row[j] = acc;
    }
  }
  return Status::Ok();
}

Status SufficientFactorCodec::Decode(const PayloadView& frame, Tensor* dense,
                                     std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  *dense = Tensor({parsed->m, parsed->n});
  const Status status = DecodeReconstruct(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    AssignBias(parsed->bias, bias);
  }
  return Status::Ok();
}

Payload SufficientFactorCodec::Encode(const SufficientFactors& factors, const float* bias,
                                      int64_t bias_len) {
  TraceSpan span("codec.encode.sf", "codec");
  CHECK_GE(bias_len, 0);
  const int64_t m = factors.rows();
  const int64_t n = factors.cols();
  const int64_t k = factors.rank();
  const int64_t total = kSfHeaderWords + (m + n) * k + bias_len;
  Payload payload = Payload::Allocate(total);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(m));
  StoreWord(words + 1, static_cast<uint32_t>(n));
  StoreWord(words + 2, static_cast<uint32_t>(k));
  StoreWord(words + 3, static_cast<uint32_t>(bias_len));
  int64_t cursor = kSfHeaderWords;
  std::copy(factors.u.data(), factors.u.data() + m * k, words + cursor);
  cursor += m * k;
  std::copy(factors.v.data(), factors.v.data() + n * k, words + cursor);
  cursor += n * k;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add((m + n) * k + bias_len);
  return payload;
}

// ---------------------------------------------------------------------- fp16

namespace {
constexpr int64_t kFp16HeaderWords = 2;

int64_t Fp16HalfWords(int64_t n) { return (n + 1) / 2; }

// residual = quant - decode(frame), computed as quant + (-approx): Scale by
// -1 is an exact sign flip and a + (-b) rounds identically to a - b, so the
// residual is the bitwise error-feedback carry. `residual` holds the decoded
// approximation on entry.
void FinishResidual(const float* quant, int64_t n, float* residual) {
  simd::Scale(residual, -1.0f, n);
  simd::ReduceAdd(residual, quant, n);
}
}  // namespace

uint16_t Fp16Codec::Frame::half(int64_t i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, n);
  const uint32_t word = LoadWord(halves.data() + (i >> 1));
  return static_cast<uint16_t>((i & 1) ? word >> 16 : word & 0xFFFFu);
}

StatusOr<Fp16Codec::Frame> Fp16Codec::Parse(const PayloadView& frame) {
  StatusOr<int64_t> n = HeaderDim("fp16", frame, 0);
  if (!n.ok()) return n.status();
  StatusOr<int64_t> bias_len = HeaderDim("fp16", frame, 1);
  if (!bias_len.ok()) return bias_len.status();
  if (*n < 1) return BadDim("fp16", *n);
  const int64_t half_words = Fp16HalfWords(*n);
  const int64_t want = kFp16HeaderWords + half_words + *bias_len;
  if (frame.size() != want) {
    return want > frame.size()
               ? Truncated("fp16", want, frame.size())
               : InvalidArgumentError("fp16 frame has " + std::to_string(frame.size()) +
                                      " words, expected " + std::to_string(want));
  }
  Frame parsed;
  parsed.n = *n;
  parsed.bias_len = *bias_len;
  int64_t cursor = kFp16HeaderWords;
  parsed.halves = frame.Sub(cursor, half_words);
  cursor += half_words;
  parsed.bias = frame.Sub(cursor, *bias_len);
  return parsed;
}

StatusOr<int64_t> Fp16Codec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->n;
}

Status Fp16Codec::DecodeDense(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.fp16", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  // Stage the packed halves out of the slab once (compressed size, half of
  // dense), then unpack with the exact formula.
  std::vector<uint16_t> halves(static_cast<size_t>(f.n));
  std::memcpy(halves.data(), f.halves.data(), static_cast<size_t>(f.n) * sizeof(uint16_t));
  WireCopyStats::Add(f.halves.size());
  *out = Tensor({f.n});
  simd::Fp16Decode(halves.data(), f.n, out->data());
  return Status::Ok();
}

Status Fp16Codec::Decode(const PayloadView& frame, Tensor* dense,
                         std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Status status = DecodeDense(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    AssignBias(parsed->bias, bias);
  }
  return Status::Ok();
}

namespace {

// Serializes already-packed halves plus the bias trailer into one frame.
Payload Fp16Assemble(const std::vector<uint16_t>& halves, int64_t n, const float* bias,
                     int64_t bias_len) {
  const int64_t half_words = Fp16HalfWords(n);
  Payload payload = Payload::Allocate(kFp16HeaderWords + half_words + bias_len);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(n));
  StoreWord(words + 1, static_cast<uint32_t>(bias_len));
  int64_t cursor = kFp16HeaderWords;
  if (n & 1) {
    // Zero the padding half in the last word so identical inputs always
    // serialize to identical bytes (the conformance suite memcmps frames).
    StoreWord(words + cursor + half_words - 1, 0);
  }
  std::memcpy(words + cursor, halves.data(), static_cast<size_t>(n) * sizeof(uint16_t));
  cursor += half_words;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add(half_words + bias_len);
  return payload;
}

}  // namespace

Payload Fp16Codec::EncodeSr(const float* quant, int64_t n, uint32_t seed,
                            int64_t base_index, float* residual, const float* bias,
                            int64_t bias_len) {
  TraceSpan span("codec.encode.fp16", "codec", n);
  CHECK_NOTNULL(quant);
  CHECK_GT(n, 0);
  CHECK_GE(bias_len, 0);
  std::vector<uint16_t> halves(static_cast<size_t>(n));
  simd::Fp16EncodeSr(quant, n, seed, base_index, halves.data());
  if (residual != nullptr) {
    simd::Fp16Decode(halves.data(), n, residual);
    FinishResidual(quant, n, residual);
  }
  return Fp16Assemble(halves, n, bias, bias_len);
}

Payload Fp16Codec::EncodeRn(const float* src, int64_t n, const float* bias,
                            int64_t bias_len) {
  TraceSpan span("codec.encode.fp16", "codec", n);
  CHECK_NOTNULL(src);
  CHECK_GT(n, 0);
  CHECK_GE(bias_len, 0);
  std::vector<uint16_t> halves(static_cast<size_t>(n));
  simd::Fp16EncodeRn(src, n, halves.data());
  return Fp16Assemble(halves, n, bias, bias_len);
}

// ---------------------------------------------------------------------- int8

namespace {
constexpr int64_t kInt8HeaderWords = 2;

int64_t Int8Chunks(int64_t n) { return (n + simd::kInt8ChunkSize - 1) / simd::kInt8ChunkSize; }

int64_t Int8PackedWords(int64_t n) { return (n + 3) / 4; }
}  // namespace

StatusOr<Int8Codec::Frame> Int8Codec::Parse(const PayloadView& frame) {
  StatusOr<int64_t> n = HeaderDim("int8", frame, 0);
  if (!n.ok()) return n.status();
  StatusOr<int64_t> bias_len = HeaderDim("int8", frame, 1);
  if (!bias_len.ok()) return bias_len.status();
  if (*n < 1) return BadDim("int8", *n);
  const int64_t chunks = Int8Chunks(*n);
  const int64_t packed_words = Int8PackedWords(*n);
  const int64_t want = kInt8HeaderWords + chunks + packed_words + *bias_len;
  if (frame.size() != want) {
    return want > frame.size()
               ? Truncated("int8", want, frame.size())
               : InvalidArgumentError("int8 frame has " + std::to_string(frame.size()) +
                                      " words, expected " + std::to_string(want));
  }
  Frame parsed;
  parsed.n = *n;
  parsed.bias_len = *bias_len;
  int64_t cursor = kInt8HeaderWords;
  parsed.scales = frame.Sub(cursor, chunks);
  cursor += chunks;
  parsed.packed = frame.Sub(cursor, packed_words);
  cursor += packed_words;
  parsed.bias = frame.Sub(cursor, *bias_len);
  return parsed;
}

StatusOr<int64_t> Int8Codec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->n;
}

Status Int8Codec::DecodeDense(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.int8", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  // Stage the packed bytes out of the slab once (compressed size, a quarter
  // of dense), then dequantize chunk by chunk with that chunk's scale.
  std::vector<int8_t> packed(static_cast<size_t>(f.n));
  std::memcpy(packed.data(), f.packed.data(), static_cast<size_t>(f.n));
  WireCopyStats::Add(f.scales.size() + f.packed.size());
  *out = Tensor({f.n});
  for (int64_t off = 0, chunk = 0; off < f.n; off += simd::kInt8ChunkSize, ++chunk) {
    const int64_t len = std::min(simd::kInt8ChunkSize, f.n - off);
    simd::Int8Decode(packed.data() + off, len, f.scales.data()[chunk],
                     out->data() + off);
  }
  return Status::Ok();
}

Status Int8Codec::Decode(const PayloadView& frame, Tensor* dense,
                         std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Status status = DecodeDense(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    AssignBias(parsed->bias, bias);
  }
  return Status::Ok();
}

Payload Int8Codec::EncodeSr(const float* quant, int64_t n, uint32_t seed,
                            int64_t base_index, float* residual, const float* bias,
                            int64_t bias_len) {
  TraceSpan span("codec.encode.int8", "codec", n);
  CHECK_NOTNULL(quant);
  CHECK_GT(n, 0);
  CHECK_GE(bias_len, 0);
  const int64_t chunks = Int8Chunks(n);
  const int64_t packed_words = Int8PackedWords(n);
  std::vector<float> scales(static_cast<size_t>(chunks));
  std::vector<int8_t> packed(static_cast<size_t>(n));
  for (int64_t off = 0, chunk = 0; off < n; off += simd::kInt8ChunkSize, ++chunk) {
    const int64_t len = std::min(simd::kInt8ChunkSize, n - off);
    const float max_abs = simd::MaxAbs(quant + off, len);
    // Good-guard: a chunk whose magnitude is zero or non-finite cannot be
    // scaled meaningfully; send scale 0 (decodes to exact zeros) and let the
    // residual carry the content forward.
    float scale = 0.0f;
    float inv_scale = 0.0f;
    if (max_abs > 0.0f && std::isfinite(max_abs)) {
      scale = max_abs / 127.0f;
      inv_scale = 1.0f / scale;
    }
    scales[static_cast<size_t>(chunk)] = scale;
    simd::Int8EncodeSr(quant + off, len, inv_scale, seed, base_index + off,
                       packed.data() + off);
    if (residual != nullptr) {
      simd::Int8Decode(packed.data() + off, len, scale, residual + off);
    }
  }
  if (residual != nullptr) {
    FinishResidual(quant, n, residual);
  }
  Payload payload = Payload::Allocate(kInt8HeaderWords + chunks + packed_words + bias_len);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(n));
  StoreWord(words + 1, static_cast<uint32_t>(bias_len));
  int64_t cursor = kInt8HeaderWords;
  std::copy(scales.begin(), scales.end(), words + cursor);
  cursor += chunks;
  if (n & 3) {
    // Zero the padding bytes in the last word for byte-identical frames.
    StoreWord(words + cursor + packed_words - 1, 0);
  }
  std::memcpy(words + cursor, packed.data(), static_cast<size_t>(n));
  cursor += packed_words;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add(chunks + packed_words + bias_len);
  return payload;
}

// --------------------------------------------------------------------- top-k

namespace {
constexpr int64_t kTopKHeaderWords = 3;
}  // namespace

int64_t TopKCodec::Frame::index(int64_t i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, k);
  return static_cast<int64_t>(LoadWord(indices.data() + i));
}

StatusOr<TopKCodec::Frame> TopKCodec::Parse(const PayloadView& frame) {
  StatusOr<int64_t> n = HeaderDim("topk", frame, 0);
  if (!n.ok()) return n.status();
  StatusOr<int64_t> k = HeaderDim("topk", frame, 1);
  if (!k.ok()) return k.status();
  StatusOr<int64_t> bias_len = HeaderDim("topk", frame, 2);
  if (!bias_len.ok()) return bias_len.status();
  if (*n < 1) return BadDim("topk", *n);
  if (*k < 1 || *k > *n) return BadDim("topk", *k);
  StatusOr<int64_t> pairs = CheckedMul("topk", 2, *k);
  if (!pairs.ok()) return pairs.status();
  const int64_t want = kTopKHeaderWords + *pairs + *bias_len;
  if (frame.size() != want) {
    return want > frame.size()
               ? Truncated("topk", want, frame.size())
               : InvalidArgumentError("topk frame has " + std::to_string(frame.size()) +
                                      " words, expected " + std::to_string(want));
  }
  Frame parsed;
  parsed.n = *n;
  parsed.k = *k;
  parsed.bias_len = *bias_len;
  int64_t cursor = kTopKHeaderWords;
  parsed.indices = frame.Sub(cursor, *k);
  cursor += *k;
  parsed.values = frame.Sub(cursor, *k);
  cursor += *k;
  parsed.bias = frame.Sub(cursor, *bias_len);
  // Indices must be strictly increasing and in-range: that proves no
  // duplicates and makes the scatter in DecodeDense memory-safe. O(k), paid
  // once per frame on the wire-input path.
  int64_t previous = -1;
  for (int64_t i = 0; i < *k; ++i) {
    const int64_t idx = static_cast<int64_t>(LoadWord(parsed.indices.data() + i));
    if (idx <= previous || idx >= *n) {
      return InvalidArgumentError("topk frame index " + std::to_string(idx) +
                                  " at position " + std::to_string(i) +
                                  " is out of order or out of range");
    }
    previous = idx;
  }
  return parsed;
}

StatusOr<int64_t> TopKCodec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->n;
}

Status TopKCodec::DecodeDense(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.topk", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  *out = Tensor({f.n});
  std::fill(out->data(), out->data() + f.n, 0.0f);
  float* od = out->data();
  const float* values = f.values.data();
  for (int64_t i = 0; i < f.k; ++i) {
    od[static_cast<int64_t>(LoadWord(f.indices.data() + i))] = values[i];
  }
  WireCopyStats::Add(2 * f.k);
  return Status::Ok();
}

Status TopKCodec::Decode(const PayloadView& frame, Tensor* dense,
                         std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Status status = DecodeDense(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    AssignBias(parsed->bias, bias);
  }
  return Status::Ok();
}

Payload TopKCodec::Encode(const float* quant, int64_t n, int64_t k, float* residual,
                          const float* bias, int64_t bias_len) {
  TraceSpan span("codec.encode.topk", "codec", n);
  CHECK_NOTNULL(quant);
  CHECK_GT(n, 0);
  CHECK_GE(k, 1);
  CHECK_LE(k, n);
  CHECK_GE(bias_len, 0);
  // Deterministic selection: the threshold is the k-th largest magnitude
  // (NaNs rank as zero so the order is total), elements strictly above it
  // are always in, and ties at the threshold fill the remaining slots in
  // index order. Independent of nth_element's internal permutation and of
  // the simd backend.
  std::vector<float> mags(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(quant[i]);
    mags[static_cast<size_t>(i)] = a == a ? a : 0.0f;
  }
  std::nth_element(mags.begin(), mags.begin() + (k - 1), mags.end(),
                   [](float a, float b) { return a > b; });
  const float threshold = mags[static_cast<size_t>(k - 1)];
  int64_t ties_left = k - simd::CountAbsGreater(quant, n, threshold);
  Payload payload = Payload::Allocate(kTopKHeaderWords + 2 * k + bias_len);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(n));
  StoreWord(words + 1, static_cast<uint32_t>(k));
  StoreWord(words + 2, static_cast<uint32_t>(bias_len));
  float* indices = words + kTopKHeaderWords;
  float* values = indices + k;
  if (residual != nullptr) {
    std::copy(quant, quant + n, residual);
  }
  int64_t taken = 0;
  for (int64_t i = 0; i < n && taken < k; ++i) {
    const float a = std::fabs(quant[i]);
    const float mag = a == a ? a : 0.0f;
    bool take = mag > threshold;
    if (!take && mag == threshold && ties_left > 0) {
      take = true;
      --ties_left;
    }
    if (take) {
      StoreWord(indices + taken, static_cast<uint32_t>(i));
      values[taken] = quant[i];
      if (residual != nullptr) {
        residual[i] = 0.0f;  // the sent value is exact; nothing carries over
      }
      ++taken;
    }
  }
  CHECK_EQ(taken, k);
  int64_t cursor = kTopKHeaderWords + 2 * k;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add(2 * k + bias_len);
  return payload;
}

// ------------------------------------------------------------------ registry

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<uint8_t, std::unique_ptr<Codec>>& RegistryMap() {
  static std::map<uint8_t, std::unique_ptr<Codec>>* map = [] {
    auto* m = new std::map<uint8_t, std::unique_ptr<Codec>>();
    (*m)[static_cast<uint8_t>(WireCodec::kRawFloat)] = std::make_unique<RawFloatCodec>();
    (*m)[static_cast<uint8_t>(WireCodec::kOneBit)] = std::make_unique<OneBitCodec>();
    (*m)[static_cast<uint8_t>(WireCodec::kSufficientFactor)] =
        std::make_unique<SufficientFactorCodec>();
    (*m)[static_cast<uint8_t>(WireCodec::kFp16)] = std::make_unique<Fp16Codec>();
    (*m)[static_cast<uint8_t>(WireCodec::kInt8)] = std::make_unique<Int8Codec>();
    (*m)[static_cast<uint8_t>(WireCodec::kTopK)] = std::make_unique<TopKCodec>();
    return m;
  }();
  return *map;
}

}  // namespace

const Codec& CodecRegistry::Get(WireCodec id) {
  const Codec* codec = Find(id);
  CHECK_NOTNULL(codec) << "unregistered codec id " << static_cast<int>(id);
  return *codec;
}

const Codec* CodecRegistry::Find(WireCodec id) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& map = RegistryMap();
  auto it = map.find(static_cast<uint8_t>(id));
  return it == map.end() ? nullptr : it->second.get();
}

void CodecRegistry::Register(std::unique_ptr<Codec> codec) {
  CHECK_NOTNULL(codec.get());
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& map = RegistryMap();
  const uint8_t id = static_cast<uint8_t>(codec->id());
  CHECK(map.find(id) == map.end()) << "codec id " << static_cast<int>(id)
                                   << " already registered";
  map[id] = std::move(codec);
}

std::vector<WireCodec> CodecRegistry::Ids() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<WireCodec> ids;
  for (const auto& [id, codec] : RegistryMap()) {
    ids.push_back(static_cast<WireCodec>(id));
  }
  return ids;
}

}  // namespace poseidon

#!/usr/bin/env python3
"""Validates the bench JSON records emitted via --json-out.

CI runs this over BENCH_micro.json after the bench-smoke job: a refactor
that silently stops producing a tracked series (or produces NaN/empty
garbage) must fail the build, not ship a hole in the perf trajectory.

Usage: check_bench_json.py FILE [FILE...]
Exit status: 0 when every file is well-formed, 1 otherwise.
"""

import json
import math
import sys

# Every series the micro-benchmark record must carry, with a lower bound the
# value has to clear (counts and rates are strictly positive; the overhead
# fraction only has to be a finite non-negative number — the binary itself
# enforces the 2% budget and this checker re-enforces it below).
MICRO_REQUIRED = {
    "raw_encode_floats_per_s": 0.0,
    "sf_roundtrip_floats_per_s": 0.0,
    "onebit_roundtrip_floats_per_s": 0.0,
    "wire_ps_floats_per_iter": 0.0,
    "wire_ps_copies_per_iter": 0.0,
    "wire_ps_msgs_per_iter": 0.0,
    "wire_ps_copy_reduction": 1.0,
    "wire_sfb_floats_per_iter": 0.0,
    "wire_sfb_copies_per_iter": 0.0,
    "wire_onebit_floats_per_iter": 0.0,
    "wire_onebit_copies_per_iter": 0.0,
    "socket_tcp_gbps": 0.0,
    "socket_unix_gbps": 0.0,
    "disabled_span_ns": 0.0,
    "telemetry_overhead_frac": -1.0,
    # Roofline section (docs/PERFORMANCE.md): scalar-vs-dispatched kernel
    # throughput plus the streaming-bandwidth ceiling.
    "onebit_roundtrip_floats_per_s_scalar": 0.0,
    "onebit_roundtrip_floats_per_s_simd": 0.0,
    "ring_reduce_floats_per_s_scalar": 0.0,
    "ring_reduce_floats_per_s_simd": 0.0,
    "mem_bw_gbps": 0.0,
    # Compressed-PS bytes-vs-loss trajectory (docs/COMPRESSION.md): measured
    # bus egress per codec on a seeded training run, plus the headline
    # reduction gated below.
    "ext_compression_raw_bytes_per_iter": 0.0,
    "ext_compression_fp16_bytes_per_iter": 0.0,
    "ext_compression_int8_bytes_per_iter": 0.0,
    "ext_compression_topk_bytes_per_iter": 0.0,
    "ext_compression_raw_final_loss": 0.0,
    "ext_compression_fp16_final_loss": 0.0,
    "ext_compression_int8_final_loss": 0.0,
    "ext_compression_topk_final_loss": 0.0,
    "ext_compression_best_matched_reduction": 0.0,
    # CommPlanner trajectory (docs/PLANNER.md): joint-search cost, memoized
    # lookup cost, and the predicted-bytes comparison against the paper
    # default. The speedup and ratio floors are gated below.
    "planner_cold_search_us": 0.0,
    "planner_cached_lookup_us": 0.0,
    "planner_cache_speedup": 0.0,
    "planner_default_bytes_per_iter": 0.0,
    "planner_planned_bytes_per_iter": 0.0,
    "planner_bytes_ratio": 0.0,
}

# Minimum wire-byte reduction of the best codec whose run stayed loss-matched
# with raw fp32 (the binary computes "matched" as recovering >= 90% of raw's
# loss improvement). Under 2x means compression quietly stopped paying for
# itself — e.g. a codec regressed to raw frames or the error feedback broke
# convergence on every codec.
COMPRESSION_MIN_REDUCTION = 2.0

OVERHEAD_BUDGET = 0.02

# Minimum cold-search / cached-lookup ratio for the plan cache. Memoization
# only earns its keep if a warm lookup is orders of magnitude cheaper than
# re-running the joint search; under 100x means the cache is re-hashing or
# re-copying something expensive on the hit path.
PLANNER_MIN_CACHE_SPEEDUP = 100.0

# The joint search must never predict more wire bytes than the hand-picked
# paper default it replaces (ratio = default / planned).
PLANNER_MIN_BYTES_RATIO = 1.0

# Minimum speedup of the dispatched 1-bit round trip over the pinned-scalar
# run, enforced only when the host actually has a SIMD backend (meta
# simd_available). The kernels' headline case: anything under this means the
# vector path quietly fell off (dispatch regression, scalar fallback, a
# de-vectorized kernel) even if every series is still present.
ONEBIT_SIMD_MIN_RATIO = 4.0


def fail(path, message):
    print(f"{path}: FAIL: {message}", file=sys.stderr)
    return False


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or malformed JSON ({err})")

    if not isinstance(record, dict):
        return fail(path, "top level is not an object")
    bench = record.get("bench")
    if not isinstance(bench, str) or not bench:
        return fail(path, "missing 'bench' name")
    series = record.get("series")
    if not isinstance(series, dict) or not series:
        return fail(path, "missing or empty 'series' object")

    ok = True
    for name, values in series.items():
        if not isinstance(values, list) or not values:
            ok = fail(path, f"series '{name}' is empty")
            continue
        for v in values:
            if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
                ok = fail(path, f"series '{name}' has a non-finite sample: {v!r}")
                break

    if bench == "micro_benchmarks":
        for name, minimum in MICRO_REQUIRED.items():
            values = series.get(name)
            if not isinstance(values, list) or not values:
                ok = fail(path, f"required series '{name}' is missing or empty")
                continue
            if any(not math.isfinite(v) or v <= minimum for v in values
                   if isinstance(v, (int, float))):
                ok = fail(path, f"series '{name}' has samples <= {minimum}: {values}")
        reduction = series.get("ext_compression_best_matched_reduction") or []
        if reduction and max(reduction) < COMPRESSION_MIN_REDUCTION:
            ok = fail(path, f"best loss-matched compression reduction "
                            f"{max(reduction):.2f}x is below the "
                            f"{COMPRESSION_MIN_REDUCTION}x floor")
        speedup = series.get("planner_cache_speedup") or []
        if speedup and max(speedup) < PLANNER_MIN_CACHE_SPEEDUP:
            ok = fail(path, f"plan-cache speedup {max(speedup):.0f}x is below "
                            f"the {PLANNER_MIN_CACHE_SPEEDUP:.0f}x floor")
        bytes_ratio = series.get("planner_bytes_ratio") or []
        if bytes_ratio and max(bytes_ratio) < PLANNER_MIN_BYTES_RATIO:
            ok = fail(path, f"joint plan predicts more wire bytes than the "
                            f"paper default (ratio {max(bytes_ratio):.3f} < "
                            f"{PLANNER_MIN_BYTES_RATIO})")
        overhead = series.get("telemetry_overhead_frac", [])
        if overhead and max(overhead) >= OVERHEAD_BUDGET:
            ok = fail(path, f"disabled-tracing overhead {max(overhead):.4f} "
                            f">= budget {OVERHEAD_BUDGET}")
        meta = record.get("meta", {})
        simd_available = meta.get("simd_available", 0)
        scalar = series.get("onebit_roundtrip_floats_per_s_scalar") or []
        simd = series.get("onebit_roundtrip_floats_per_s_simd") or []
        if simd_available and scalar and simd:
            ratio = max(simd) / max(scalar)
            if ratio < ONEBIT_SIMD_MIN_RATIO:
                ok = fail(path, f"onebit simd/scalar speedup {ratio:.2f}x is below "
                                f"the {ONEBIT_SIMD_MIN_RATIO}x floor "
                                f"(simd {max(simd):.3g}, scalar {max(scalar):.3g})")
        elif not simd_available:
            print(f"{path}: note: no SIMD backend on this host; "
                  f"skipping the onebit speedup gate")

    if ok:
        print(f"{path}: ok ({bench}: {len(series)} series)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    return 0 if all([check_file(p) for p in argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

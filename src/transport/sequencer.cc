#include "src/transport/sequencer.h"

#include <utility>

#include "src/common/logging.h"

namespace poseidon {

int64_t StreamSequencer::NextSeq(const Address& from, const Address& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_[StreamKey{from, to}]++;
}

void ReorderBuffer::Admit(Message message, std::vector<Message>* out) {
  if (message.seq < 0) {
    out->push_back(std::move(message));  // unsequenced traffic passes through
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  StreamState& stream = streams_[StreamKey{message.from, message.to}];
  if (message.seq < stream.next_expected || stream.parked.count(message.seq) > 0) {
    if (counters_ != nullptr) {
      counters_->AddDeduped();
    }
    return;  // duplicate: already released or already parked
  }
  if (message.seq > stream.next_expected) {
    CHECK_LT(static_cast<int64_t>(stream.parked.size()), max_buffered_)
        << "reorder buffer overflow on stream " << message.from.node << ":"
        << message.from.port << " -> " << message.to.node << ":" << message.to.port
        << " (next expected " << stream.next_expected << ", got " << message.seq << ")";
    if (counters_ != nullptr) {
      counters_->AddReordered();
    }
    stream.parked.emplace(message.seq, std::move(message));
    return;  // gap: wait for the missing seq (retransmit guarantees arrival)
  }
  // In order: release it plus any parked run it unblocks.
  out->push_back(std::move(message));
  ++stream.next_expected;
  auto it = stream.parked.begin();
  while (it != stream.parked.end() && it->first == stream.next_expected) {
    out->push_back(std::move(it->second));
    it = stream.parked.erase(it);
    ++stream.next_expected;
  }
}

int64_t ReorderBuffer::buffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, stream] : streams_) {
    total += static_cast<int64_t>(stream.parked.size());
  }
  return total;
}

}  // namespace poseidon

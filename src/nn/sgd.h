// SGD with momentum and weight decay (the optimizer used throughout the
// paper's experiments). The optimizer is applied wherever the master copy of
// a parameter lives: on KV-store shards for PS-synchronized layers, and
// replicated on every worker for SFB-synchronized layers (identical inputs
// give identical replicas, preserving BSP consistency).
#ifndef POSEIDON_SRC_NN_SGD_H_
#define POSEIDON_SRC_NN_SGD_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "src/tensor/tensor.h"

namespace poseidon {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config) : config_(config) {}

  // v <- mu*v + grad + wd*value ; value <- value - lr*v
  // `key` identifies the parameter so its velocity persists across steps.
  void Step(const std::string& key, const Tensor& grad, Tensor* value);

  // Step on a sub-range [offset, offset+len) of a flattened parameter (used
  // by KV-store shards, which own slices rather than whole tensors).
  void StepSlice(const std::string& key, const float* grad, float* value, int64_t len);

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }
  const SgdConfig& config() const { return config_; }

 private:
  SgdConfig config_;
  // Guards the velocity map's structure: syncer pool threads step different
  // layers (distinct keys) concurrently, so only the insert needs
  // serializing — element references stay valid across rehashes, and each
  // key is stepped by at most one thread per iteration.
  std::mutex mutex_;
  std::unordered_map<std::string, Tensor> velocity_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_SGD_H_

/// \file
/// Deterministic, seeded fault decisions for the live transport.
///
/// The MessageBus stands in for a real Ethernet + socket layer; this class
/// stands in for everything that can go wrong underneath it. For every wire
/// transmission it decides — deterministically, from (seed, stream, seq,
/// attempt) alone — whether the message is dropped, duplicated, or delayed,
/// so a chaos run is bit-reproducible from its seed no matter how the sender
/// threads interleave.
///
/// Failure model (docs/FAULT_TOLERANCE.md):
///   * drop       — the transmission is lost. The bus models a reliable link
///     layer (TCP-style): the loss is counted, and the same message (same
///     seq) is retransmitted after `retransmit_timeout_us`. A retransmission
///     rolls fresh fault dice (salted with the attempt number), so repeated
///     loss is possible but terminates almost surely for drop_prob < 1.
///   * duplicate  — a second copy is committed `duplicate_lag_us` later
///     (models retransmit-after-spurious-timeout). The receiver's dedup
///     layer suppresses it.
///   * delay      — delivery is held back uniformly in
///     [delay_min_us, delay_max_us]. Undelayed messages sent later overtake
///     it: this is how reordering happens, exactly as on a real network.
///   * partition  — an (a, b) node pair is unreachable in both directions;
///     traffic is parked (the link layer keeps retrying) and flows when the
///     partition heals.
///
/// Faults apply to remote data-plane traffic only: node-local sends never
/// touch the NIC, and kShutdown control messages are exempt so teardown
/// stays orderly.
#ifndef POSEIDON_SRC_TRANSPORT_FAULT_INJECTOR_H_
#define POSEIDON_SRC_TRANSPORT_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

#include "src/stats/fault_counters.h"
#include "src/transport/message.h"

namespace poseidon {

/// Knobs for one chaos run. Probabilities are per wire transmission.
struct FaultPlan {
  uint64_t seed = 1;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  int delay_min_us = 0;
  int delay_max_us = 500;
  /// Lag before a duplicate copy is committed.
  int duplicate_lag_us = 50;
  /// Link-layer retransmit timeout after a drop.
  int retransmit_timeout_us = 300;
  /// Safety valve: after this many consecutive losses of one message the
  /// next retransmission is forced through (a real RTO backoff would have
  /// succeeded long before).
  int max_transmissions = 16;

  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0;
  }
};

/// What the injector decided for one transmission attempt.
struct FaultDecision {
  bool drop = false;       ///< lose this attempt; retransmit after the RTO
  bool duplicate = false;  ///< commit a second copy after duplicate_lag_us
  int delay_us = 0;        ///< hold delivery back this long (0 = deliver now)
};

/// Pure decision function plus partition state; owns the fault counters.
/// Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of transmission attempt `attempt` (0 = first) of the
  /// message. Deterministic in (plan.seed, from, to, seq, attempt). Does not
  /// touch the counters — the bus counts when it commits the fault.
  FaultDecision Decide(const Message& message, int attempt) const;

  /// Cuts both directions between nodes `a` and `b`. Idempotent.
  void Partition(int a, int b);
  /// Restores every cut link.
  void HealAll();
  /// True while `src` -> `dst` traffic must be parked.
  bool IsPartitioned(int src, int dst) const;

  FaultCounters& counters() { return counters_; }
  FaultCountersSnapshot Counters() const { return counters_.Snapshot(); }

 private:
  const FaultPlan plan_;
  FaultCounters counters_;

  mutable std::mutex mutex_;
  std::set<std::pair<int, int>> partitions_;  // normalized (min, max) pairs
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_FAULT_INJECTOR_H_

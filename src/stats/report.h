// Shared reporting helpers for the benchmark harnesses: scaling sweeps over
// (system, node-count) grids and uniform table formatting, so every
// regenerated figure prints comparable, diffable series.
#ifndef POSEIDON_SRC_STATS_REPORT_H_
#define POSEIDON_SRC_STATS_REPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/protocol_sim.h"
#include "src/cluster/system_config.h"
#include "src/common/cli.h"
#include "src/models/model_spec.h"
#include "src/planner/comm_plan.h"
#include "src/poseidon/runtime_scheme.h"

namespace poseidon {

struct SweepResult {
  std::string system;
  int nodes = 0;
  double gbps = 0.0;
  SimResult sim;
};

// Runs every (system, nodes) combination for one model at fixed bandwidth.
std::vector<SweepResult> RunScalingSweep(const ModelSpec& model,
                                         const std::vector<SystemConfig>& systems,
                                         const std::vector<int>& node_counts, double gbps,
                                         Engine engine);

// The communication plan a bench's --plan flag selects at one sweep point:
// nullptr under --plan=paper (the bench keeps its hand-picked systems);
// the CommPlanner's memoized joint search for (model, nodes, gbps) under
// --plan=auto (every sweep point hits the process-wide PlanCache); the
// CommPlan JSON dump under --plan=fixed:<path> (fatal if the file does not
// load — a bench must never silently fall back to different settings).
std::shared_ptr<const CommPlan> PlanForBench(const BenchArgs& args, const ModelSpec& model,
                                             int nodes, double gbps);

// RunScalingSweep honoring --plan: under paper it is RunScalingSweep exactly;
// under auto/fixed the hand-picked `paper_systems` are replaced by one
// "Planned" system per sweep point (PlannedSystem over PlanForBench), so the
// planner's joint choice is what gets priced instead of the per-bench flag
// stacks.
std::vector<SweepResult> RunPlannedScalingSweep(const BenchArgs& args, const ModelSpec& model,
                                                const std::vector<SystemConfig>& paper_systems,
                                                const std::vector<int>& node_counts,
                                                double gbps, Engine engine);

// Per-layer dump of the plan driving a planned sweep at its largest
// configuration (empty string under --plan=paper), so planned tables are
// self-describing in the bench output.
std::string FormatPlanSummary(const BenchArgs& args, const ModelSpec& model, int nodes,
                              double gbps);

// Renders a figure-style speedup table: one row per node count, one column
// per system (plus the linear ideal).
std::string FormatSpeedupTable(const std::string& title,
                               const std::vector<SweepResult>& results);

// Egress-batcher ablation: runs `system` with batching off and on at each
// node count and renders per-node wire messages and tx gigabits per
// iteration side by side (the batcher's effect is on framing and message
// count; payload bytes and timing are unchanged).
std::string FormatBatchAblation(const std::string& title, const ModelSpec& model,
                                SystemConfig system, const std::vector<int>& node_counts,
                                double gbps, Engine engine);

// Loss-rate ablation: runs `system` at each wire loss rate and renders the
// iteration time, slowdown vs the lossless run, expected transmissions per
// message, and tx volume (retransmit inflation included). The modeled link
// layer retransmits, so loss costs time and bytes, never data — mirroring
// the live transport's fault fabric (docs/FAULT_TOLERANCE.md).
std::string FormatLossAblation(const std::string& title, const ModelSpec& model,
                               SystemConfig system, int nodes, double gbps, Engine engine,
                               const std::vector<double>& loss_rates);

// One point of the wire-compression ablation (bench_ext_compression and the
// micro-benchmark's recorded trajectory): a real small-cluster training run
// under one PS wire codec, with the bus's measured egress bytes and the loss
// trajectory. Runs are seeded and bitwise deterministic per configuration.
struct CompressionAblationPoint {
  double wire_bytes_per_iter = 0.0;  // measured bus egress, framing included
  double first_loss = 0.0;
  double final_loss = 0.0;
};

// Trains a small seeded MLP for `iters` iterations under `policy` (the size
// gate is lowered so every PS layer actually runs the codec; density applies
// to the top-k codec only).
CompressionAblationPoint RunCompressionAblation(PsCompressionPolicy policy,
                                                double topk_density, int iters);

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_REPORT_H_

#include "src/poseidon/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace poseidon {
namespace {

constexpr uint32_t kMagic = 0x5053444Eu;  // "PSDN"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadBytes(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

template <typename T>
bool WritePod(std::FILE* f, const T& value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

}  // namespace

Status SaveCheckpoint(Network& net, int64_t next_iter, const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return UnavailableError("cannot open " + path + " for writing");
  }
  std::FILE* f = file.get();

  std::vector<ParamBlock> all;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      all.push_back(p);
    }
  }
  const uint64_t count = all.size();
  if (!WritePod(f, kMagic) || !WritePod(f, kVersion) || !WritePod(f, next_iter) ||
      !WritePod(f, count)) {
    return UnavailableError("short write to " + path);
  }
  for (const ParamBlock& p : all) {
    const uint64_t name_len = p.name.size();
    const uint64_t floats = static_cast<uint64_t>(p.value->size());
    if (!WritePod(f, name_len) || !WriteBytes(f, p.name.data(), p.name.size()) ||
        !WritePod(f, floats) ||
        !WriteBytes(f, p.value->data(), sizeof(float) * floats)) {
      return UnavailableError("short write to " + path);
    }
  }
  return Status::Ok();
}

StatusOr<int64_t> LoadCheckpoint(const std::string& path, Network* net) {
  CHECK_NOTNULL(net);
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFoundError("cannot open " + path);
  }
  std::FILE* f = file.get();

  uint32_t magic = 0;
  uint32_t version = 0;
  int64_t next_iter = 0;
  uint64_t count = 0;
  if (!ReadPod(f, &magic) || !ReadPod(f, &version) || !ReadPod(f, &next_iter) ||
      !ReadPod(f, &count)) {
    return InvalidArgumentError(path + ": truncated header");
  }
  if (magic != kMagic) {
    return InvalidArgumentError(path + ": not a Poseidon checkpoint");
  }
  if (version != kVersion) {
    return InvalidArgumentError(path + ": unsupported version " + std::to_string(version));
  }

  std::vector<ParamBlock> all;
  for (auto& layer_params : net->LayerParams()) {
    for (ParamBlock& p : layer_params) {
      all.push_back(p);
    }
  }
  if (count != all.size()) {
    return InvalidArgumentError(path + ": parameter count mismatch (" +
                                std::to_string(count) + " vs " +
                                std::to_string(all.size()) + ")");
  }
  for (ParamBlock& p : all) {
    uint64_t name_len = 0;
    if (!ReadPod(f, &name_len) || name_len > 4096) {
      return InvalidArgumentError(path + ": corrupt entry");
    }
    std::string name(name_len, '\0');
    uint64_t floats = 0;
    if (!ReadBytes(f, name.data(), name_len) || !ReadPod(f, &floats)) {
      return InvalidArgumentError(path + ": corrupt entry");
    }
    if (name != p.name) {
      return InvalidArgumentError(path + ": expected parameter " + p.name + ", found " +
                                  name);
    }
    if (floats != static_cast<uint64_t>(p.value->size())) {
      return InvalidArgumentError(path + ": shape mismatch for " + name);
    }
    if (!ReadBytes(f, p.value->data(), sizeof(float) * floats)) {
      return InvalidArgumentError(path + ": truncated payload for " + name);
    }
  }
  return next_iter;
}

}  // namespace poseidon

/// \file
/// Process-wide metrics registry: typed counters, gauges, and fixed-bucket
/// histograms with a lock-free hot path.
///
/// Design contract (docs/OBSERVABILITY.md):
///   * Registration is slow-path (mutex + map) and returns a stable pointer;
///     callers cache the handle once and then increment through it.
///   * Increments/records are relaxed atomics — no locks, no allocation, no
///     clock reads — so instrumenting a hot loop costs one `lock xadd`.
///   * Snapshot() walks the registry under the registration mutex and reads
///     every atomic once, producing a self-consistent point-in-time view
///     (each metric monotone between snapshots; cross-metric skew is bounded
///     by the walk, which performs no blocking work).
///   * ToJson()/WriteJson() export the snapshot for dashboards, the bench
///     JSON trajectory, and the `--metrics-json` CLI flag.
///
/// Two registry scopes exist: MetricsRegistry::Default() is the process-wide
/// registry every subsystem records into; independent instances can be
/// constructed where per-object isolation matters (FaultCounters keeps one
/// per MessageBus so two buses in one test never mix their weather).
#ifndef POSEIDON_SRC_STATS_METRICS_H_
#define POSEIDON_SRC_STATS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace poseidon {

/// Monotonically increasing relaxed-atomic counter.
class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, observed bandwidth).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over int64 samples (latencies in ns, sizes in
/// bytes). Bucket i counts samples <= edges[i]; one overflow bucket counts
/// the rest. Record() is two relaxed atomic adds plus a branch-free-ish
/// linear edge scan (edge counts are small, typically <= 16).
class Histogram {
 public:
  /// `edges` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<int64_t> edges);

  void Record(int64_t sample);

  /// Plain-value copy, safe to compare and serialize.
  struct Snapshot {
    std::vector<int64_t> edges;   ///< upper bucket edges (inclusive)
    std::vector<int64_t> counts;  ///< edges.size() + 1 buckets (last = overflow)
    int64_t total_count = 0;
    int64_t sum = 0;
    int64_t max = 0;

    double Mean() const {
      return total_count > 0 ? static_cast<double>(sum) / static_cast<double>(total_count)
                             : 0.0;
    }
  };
  Snapshot TakeSnapshot() const;
  const std::vector<int64_t>& edges() const { return edges_; }
  void Reset();

 private:
  const std::vector<int64_t> edges_;
  std::vector<std::atomic<int64_t>> counts_;  // edges_.size() + 1
  std::atomic<int64_t> total_count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Default latency bucket edges: 1us .. ~1s in powers of 4, in nanoseconds.
std::vector<int64_t> LatencyBucketsNs();

/// Named registry of metrics. Get*() registers on first use and returns a
/// stable pointer; names are flat dotted strings ("bus.link.bytes").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (created on first use, never destroyed).
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Registers a histogram with the given bucket edges; on a name collision
  /// the existing histogram is returned (its edges win).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> edges = LatencyBucketsNs());

  /// Point-in-time view of every registered metric.
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Zeroes every registered metric (benches and tests; handles stay valid).
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_METRICS_H_

// Wire-format conformance: the socket transport must emit exactly the bytes
// docs/WIRE_FORMAT.md specifies — the same framing the cost model charges
// (kWireFrameBytes / kWireChunkHeaderBytes / kBatchEntryHeaderBytes) — and
// every codec's payload must decode bit-identically after the trip through
// EncodeMessageFrame/DecodeWireFrame.
//
// The committed golden fixture (tests/golden/wire_frames.hex) pins the exact
// byte stream: any header-layout, endianness, or codec-framing change breaks
// this test loudly instead of silently desynchronizing mixed-version
// clusters. Regenerate deliberately with POSEIDON_REGEN_GOLDEN=1 (the test
// still fails on a mismatch in the same run, so a regen is always visible).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/tensor/onebit.h"
#include "src/tensor/sufficient_factor.h"
#include "src/transport/codec.h"
#include "src/transport/message.h"
#include "src/transport/wire_format.h"

namespace poseidon {
namespace {

std::string GoldenPath() {
  const char* dir = std::getenv("POSEIDON_GOLDEN_DIR");
  return std::string(dir != nullptr ? dir : "tests/golden") + "/wire_frames.hex";
}

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::map<std::string, std::string> ReadGolden() {
  std::map<std::string, std::string> golden;
  std::ifstream in(GoldenPath());
  std::string name, hex;
  while (in >> name >> hex) {
    golden[name] = hex;
  }
  return golden;
}

// ------------------------------------------------- deterministic fixtures --

// Raw-float gradient push: two chunks at distinct layer offsets, sharing one
// slab (the zero-copy shape a coalesced PS push produces).
Message RawPush() {
  Message m;
  m.type = MessageType::kGradPush;
  m.codec = WireCodec::kRawFloat;
  m.from = Address{0, kSyncerPortBase + 3};
  m.to = Address{2, kServerPort + 1};
  m.layer = 3;
  m.worker = 0;
  m.iter = 7;
  m.seq = 5;
  static Payload slab = [] {
    Payload p = Payload::Allocate(8);
    for (int64_t i = 0; i < 8; ++i) {
      p.data()[i] = static_cast<float>(i) * 0.25f - 1.0f;
    }
    return p;
  }();
  m.chunks.push_back(WireChunk{0, slab.View(0, 4)});
  m.chunks.push_back(WireChunk{16, slab.View(4, 3)});
  return m;
}

// 1-bit push: a real quantizer encoding (sign words + column levels + bias).
Message OneBitPush() {
  Message m;
  m.type = MessageType::kOneBitPush;
  m.codec = WireCodec::kOneBit;
  m.from = Address{1, kSyncerPortBase + 1};
  m.to = Address{0, kServerPort};
  m.layer = 1;
  m.worker = 1;
  m.iter = 2;
  m.seq = 0;
  Tensor gradient({4, 6});
  for (int64_t i = 0; i < gradient.size(); ++i) {
    gradient.data()[i] = ((i % 3) - 1) * (0.5f + 0.125f * static_cast<float>(i));
  }
  const std::vector<float> bias = {0.5f, -0.25f, 1.5f, 0.0f, -1.0f, 2.0f};
  static OneBitQuantizer quantizer;
  static Payload frame = OneBitCodec::Encode(gradient, &quantizer, bias.data(),
                                             static_cast<int64_t>(bias.size()));
  m.chunks.push_back(WireChunk{0, frame.View()});
  return m;
}

// Sufficient-factor broadcast (worker-to-worker port space).
Message SfBroadcast() {
  Message m;
  m.type = MessageType::kSfBroadcast;
  m.codec = WireCodec::kSufficientFactor;
  m.from = Address{2, kSyncerPortBase};
  m.to = Address{0, kSyncerPortBase};
  m.layer = 0;
  m.worker = 2;
  m.iter = 3;
  m.seq = 9;
  SufficientFactors factors;
  factors.u = Tensor::FromVector({4, 1}, {1.0f, -2.0f, 0.5f, 4.0f});
  factors.v = Tensor::FromVector({3, 1}, {0.25f, 8.0f, -1.0f});
  const std::vector<float> bias = {-0.5f, 0.75f, 3.0f};
  static Payload frame = SufficientFactorCodec::Encode(
      factors, bias.data(), static_cast<int64_t>(bias.size()));
  m.chunks.push_back(WireChunk{0, frame.View()});
  return m;
}

// A batched frame exercising all three compressed port spaces (raw syncer
// port, collective port, monitor port) under one shared (from, to, iter).
std::vector<Message> BatchEntries() {
  static Payload slab = [] {
    Payload p = Payload::Allocate(6);
    for (int64_t i = 0; i < 6; ++i) {
      p.data()[i] = 1.0f / static_cast<float>(i + 1);
    }
    return p;
  }();
  Message a;
  a.type = MessageType::kGradPush;
  a.codec = WireCodec::kRawFloat;
  a.from = Address{1, kSyncerPortBase + 2};
  a.to = Address{3, kServerPort + 1};
  a.layer = 2;
  a.worker = 1;
  a.iter = 4;
  a.seq = 11;
  a.chunks.push_back(WireChunk{8, slab.View(0, 4)});

  Message b;
  b.type = MessageType::kCollective;
  b.codec = WireCodec::kRawFloat;
  b.from = Address{1, kCollectivePortBase + 2};
  b.to = Address{3, kCollectivePortBase + 2};
  b.layer = 2;
  b.worker = 1;
  b.iter = 4;
  b.step = 3;
  b.seq = 12;
  b.chunks.push_back(WireChunk{0, slab.View(4, 2)});

  Message c;
  c.type = MessageType::kHeartbeat;
  c.codec = WireCodec::kRawFloat;
  c.from = Address{1, kMonitorPort};
  c.to = Address{3, kMonitorPort};
  c.layer = -1;
  c.worker = 1;
  c.iter = 4;
  c.seq = -1;  // heartbeats ride unsequenced
  return {a, b, c};
}

void ExpectSameMessage(const Message& got, const Message& want) {
  EXPECT_EQ(static_cast<int>(got.type), static_cast<int>(want.type));
  EXPECT_EQ(static_cast<int>(got.codec), static_cast<int>(want.codec));
  EXPECT_TRUE(got.from == want.from)
      << got.from.node << ":" << got.from.port << " vs " << want.from.node
      << ":" << want.from.port;
  EXPECT_TRUE(got.to == want.to)
      << got.to.node << ":" << got.to.port << " vs " << want.to.node << ":"
      << want.to.port;
  EXPECT_EQ(got.layer, want.layer);
  EXPECT_EQ(got.worker, want.worker);
  EXPECT_EQ(got.iter, want.iter);
  EXPECT_EQ(got.step, want.step);
  EXPECT_EQ(got.seq, want.seq);
  ASSERT_EQ(got.chunks.size(), want.chunks.size());
  for (size_t i = 0; i < got.chunks.size(); ++i) {
    EXPECT_EQ(got.chunks[i].offset, want.chunks[i].offset);
    ASSERT_EQ(got.chunks[i].view.size(), want.chunks[i].view.size());
    EXPECT_EQ(std::memcmp(got.chunks[i].view.data(), want.chunks[i].view.data(),
                          static_cast<size_t>(want.chunks[i].view.size()) *
                              sizeof(float)),
              0)
        << "payload words differ in chunk " << i;
  }
}

std::map<std::string, std::vector<uint8_t>> AllFrames() {
  std::map<std::string, std::vector<uint8_t>> frames;
  frames["raw_push"] = EncodeMessageFrame(RawPush());
  frames["onebit_push"] = EncodeMessageFrame(OneBitPush());
  frames["sf_broadcast"] = EncodeMessageFrame(SfBroadcast());
  frames["batch_mixed_ports"] = EncodeBatchFrame(BatchEntries());
  return frames;
}

// ------------------------------------------------------------------ tests --

TEST(WireConformanceTest, LayoutConstantsAreTheAccountedOnes) {
  // These constants are load-bearing for the protocol_sim cost model and the
  // golden fixture alike; they may never drift.
  EXPECT_EQ(kWireFrameBytes, 32);
  EXPECT_EQ(kWireChunkHeaderBytes, 16);
  EXPECT_EQ(kBatchEntryHeaderBytes, 12);
}

TEST(WireConformanceTest, FrameSizeIsExactlyTheAccountedWireBytes) {
  for (const Message& m : {RawPush(), OneBitPush(), SfBroadcast()}) {
    EXPECT_EQ(static_cast<int64_t>(EncodeMessageFrame(m).size()), m.WireBytes());
  }
  const std::vector<Message> batch = BatchEntries();
  int64_t expected = kWireFrameBytes;
  for (const Message& m : batch) {
    expected += kBatchEntryHeaderBytes + m.PayloadBytes();
  }
  EXPECT_EQ(static_cast<int64_t>(EncodeBatchFrame(batch).size()), expected);
}

TEST(WireConformanceTest, HeaderFieldsSitAtTheDocumentedOffsets) {
  const Message m = RawPush();
  const std::vector<uint8_t> frame = EncodeMessageFrame(m);
  ASSERT_GE(frame.size(), static_cast<size_t>(kWireFrameBytes));
  EXPECT_EQ(frame[0], static_cast<uint8_t>(m.type));
  EXPECT_EQ(frame[1], static_cast<uint8_t>(m.codec));
  EXPECT_EQ(frame[2] | (frame[3] << 8), 2);  // num_chunks, u16 LE
  EXPECT_EQ(frame[4] | (frame[5] << 8), 0);  // from.node, i16 LE
  EXPECT_EQ(frame[6] | (frame[7] << 8), 2);  // to.node
  EXPECT_EQ(static_cast<int>(frame[8]) | (frame[9] << 8) | (frame[10] << 16) |
                (frame[11] << 24),
            kSyncerPortBase + 3);  // from.port, i32 LE
  EXPECT_EQ(static_cast<int>(frame[12]) | (frame[13] << 8) | (frame[14] << 16) |
                (frame[15] << 24),
            kServerPort + 1);                  // to.port
  EXPECT_EQ(frame[16] | (frame[17] << 8), 3);  // layer, i16
  EXPECT_EQ(frame[18] | (frame[19] << 8), 0);  // worker
  EXPECT_EQ(static_cast<int16_t>(frame[20] | (frame[21] << 8)), -1);  // step
  EXPECT_EQ(frame[22] | (frame[23] << 8), 0);  // flags
  EXPECT_EQ(static_cast<int>(frame[24]) | (frame[25] << 8) | (frame[26] << 16) |
                (frame[27] << 24),
            7);  // iter
  EXPECT_EQ(static_cast<int>(frame[28]) | (frame[29] << 8) | (frame[30] << 16) |
                (frame[31] << 24),
            5);  // seq
  EXPECT_FALSE(IsBatchFrame(frame.data(), static_cast<int64_t>(frame.size())));
  const std::vector<uint8_t> batch = EncodeBatchFrame(BatchEntries());
  EXPECT_EQ(batch[0], kWireBatchType);
  EXPECT_TRUE(IsBatchFrame(batch.data(), static_cast<int64_t>(batch.size())));
}

TEST(WireConformanceTest, GoldenBytesMatchTheCommittedFixture) {
  const auto frames = AllFrames();
  if (std::getenv("POSEIDON_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    for (const auto& [name, bytes] : frames) {
      out << name << " " << HexEncode(bytes) << "\n";
    }
    out.close();
    std::fprintf(stderr, "regenerated %s\n", GoldenPath().c_str());
  }
  const auto golden = ReadGolden();
  ASSERT_FALSE(golden.empty()) << "missing fixture " << GoldenPath();
  for (const auto& [name, bytes] : frames) {
    auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "fixture lacks frame " << name
                                << " (regen with POSEIDON_REGEN_GOLDEN=1)";
    EXPECT_EQ(HexEncode(bytes), it->second)
        << "frame " << name << " drifted from the committed wire format";
  }
  EXPECT_EQ(golden.size(), frames.size()) << "stale extra frames in fixture";
}

TEST(WireConformanceTest, SingleFramesDecodeBitExactly) {
  for (const Message& original : {RawPush(), OneBitPush(), SfBroadcast()}) {
    const std::vector<uint8_t> frame = EncodeMessageFrame(original);
    std::vector<Message> decoded;
    const Status status =
        DecodeWireFrame(frame.data(), static_cast<int64_t>(frame.size()), &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(decoded.size(), 1u);
    ExpectSameMessage(decoded[0], original);
    EXPECT_EQ(decoded[0].send_ns, 0) << "send_ns must never cross the wire";
  }
}

TEST(WireConformanceTest, BatchFramesDecodeBitExactly) {
  const std::vector<Message> originals = BatchEntries();
  const std::vector<uint8_t> frame = EncodeBatchFrame(originals);
  std::vector<Message> decoded;
  const Status status =
      DecodeWireFrame(frame.data(), static_cast<int64_t>(frame.size()), &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(decoded.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    SCOPED_TRACE("batch entry " + std::to_string(i));
    ExpectSameMessage(decoded[i], originals[i]);
  }
}

TEST(WireConformanceTest, DecodedPayloadsReconstructThroughTheCodecRegistry) {
  // The receiver's real consumption path: look the codec up by the id in the
  // frame header and decode the chunk views. Dense reconstructions must be
  // bitwise identical before and after the socket trip.
  for (const Message& original : {OneBitPush(), SfBroadcast()}) {
    const std::vector<uint8_t> frame = EncodeMessageFrame(original);
    std::vector<Message> decoded;
    ASSERT_TRUE(
        DecodeWireFrame(frame.data(), static_cast<int64_t>(frame.size()), &decoded)
            .ok());
    ASSERT_EQ(decoded.size(), 1u);
    const Codec* codec = CodecRegistry::Find(decoded[0].codec);
    ASSERT_NE(codec, nullptr);
    Tensor before, after;
    std::vector<float> bias_before, bias_after;
    ASSERT_TRUE(
        codec->Decode(original.chunks[0].view, &before, &bias_before).ok());
    ASSERT_TRUE(
        codec->Decode(decoded[0].chunks[0].view, &after, &bias_after).ok());
    ASSERT_EQ(before.size(), after.size());
    EXPECT_EQ(std::memcmp(before.data(), after.data(),
                          static_cast<size_t>(before.size()) * sizeof(float)),
              0);
    EXPECT_EQ(bias_before, bias_after);
  }
}

TEST(WireConformanceTest, MalformedFramesReturnStatusNotCrash) {
  const std::vector<uint8_t> frame = EncodeMessageFrame(RawPush());
  std::vector<Message> decoded;
  // Truncations at every boundary: header, chunk header, payload.
  for (int64_t size : {int64_t{0}, int64_t{5}, kWireFrameBytes - 1,
                       kWireFrameBytes + 3, kWireFrameBytes + kWireChunkHeaderBytes,
                       static_cast<int64_t>(frame.size()) - 1}) {
    decoded.clear();
    EXPECT_FALSE(DecodeWireFrame(frame.data(), size, &decoded).ok())
        << "truncation to " << size << " bytes decoded successfully";
  }
  // Trailing garbage must be rejected, not ignored.
  std::vector<uint8_t> padded = frame;
  padded.push_back(0xAB);
  decoded.clear();
  EXPECT_FALSE(
      DecodeWireFrame(padded.data(), static_cast<int64_t>(padded.size()), &decoded)
          .ok());
}

}  // namespace
}  // namespace poseidon

// Virtual-time discrete-event simulator.
//
// All cluster experiments run in virtual time: GPU compute, PCIe copies and
// network transfers are modeled as durations, so a 32-node 40 GbE testbed
// simulates in milliseconds of wall-clock on one core. The simulator is
// single-threaded and deterministic.
#ifndef POSEIDON_SRC_SIM_SIMULATOR_H_
#define POSEIDON_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"

namespace poseidon {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  double Now() const { return now_; }

  // Schedules `callback` to run `delay` seconds from now (delay >= 0).
  void Schedule(double delay, std::function<void()> callback);

  // Schedules at an absolute virtual time >= Now().
  void ScheduleAt(double time, std::function<void()> callback);

  // Runs until the event queue drains or Stop() is called. Returns the number
  // of events processed.
  uint64_t Run();

  // Runs until virtual time exceeds `deadline` (events at exactly `deadline`
  // still fire) or the queue drains.
  uint64_t RunUntil(double deadline);

  // Makes Run() return after the current event completes.
  void Stop() { stopped_ = true; }

  uint64_t events_processed() const { return events_processed_; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  bool stopped_ = false;
  uint64_t events_processed_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_SIM_SIMULATOR_H_

// Egress batching is a transport-level optimization: grouping same-
// destination wire messages into one frame must never change what the
// training algorithm computes. These tests train identical runs with and
// without batching and require bitwise-identical parameters, plus strictly
// fewer (never more) wire messages with batching on.
#include <gtest/gtest.h>

#include <vector>

#include "src/poseidon/trainer.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

using testing::AllParams;

struct RunResult {
  std::vector<float> params;
  int64_t wire_messages = 0;
  int64_t logical_messages = 0;
};

RunResult TrainRun(FcSyncPolicy policy, int workers, int servers, int shards, bool batch) {
  const SyntheticDataset dataset = testing::TinyDataset();
  TrainerOptions options =
      testing::SmallTrainerOptions(workers, servers, shards, /*staleness=*/0, policy);
  options.kv_pair_bytes = 512;
  options.batch_egress = batch;
  // A generous window so a backprop burst reliably lands in one frame.
  options.batch_options.flush_interval_us = 2000;

  PoseidonTrainer trainer(testing::TinyMlpFactory(/*hidden_layers=*/3), options);
  trainer.Train(dataset, 10);
  trainer.bus().FlushEgress();
  RunResult result;
  result.params = AllParams(trainer.worker_net(0));
  for (int64_t m : trainer.bus().TxMessages()) {
    result.wire_messages += m;
  }
  for (int64_t e : trainer.bus().TxEntries()) {
    result.logical_messages += e;
  }
  return result;
}

class EgressBatchingTest : public ::testing::TestWithParam<FcSyncPolicy> {};

TEST_P(EgressBatchingTest, TrajectoryBitwiseIdenticalWithBatching) {
  const FcSyncPolicy policy = GetParam();
  const RunResult plain = TrainRun(policy, 3, 2, 2, /*batch=*/false);
  const RunResult batched = TrainRun(policy, 3, 2, 2, /*batch=*/true);

  EXPECT_EQ(plain.params, batched.params)
      << "batching changed the training trajectory";
  // Batching can only merge frames, never add them; the logical message
  // stream is identical.
  EXPECT_EQ(plain.logical_messages, batched.logical_messages);
  EXPECT_LE(batched.wire_messages, plain.wire_messages);
  EXPECT_GT(batched.wire_messages, 0);
}

INSTANTIATE_TEST_SUITE_P(Policies, EgressBatchingTest,
                         ::testing::Values(FcSyncPolicy::kDense, FcSyncPolicy::kHybrid,
                                           FcSyncPolicy::kOneBit,
                                           FcSyncPolicy::kRingAllreduce,
                                           FcSyncPolicy::kTreeAllreduce),
                         [](const ::testing::TestParamInfo<FcSyncPolicy>& info) {
                           switch (info.param) {
                             case FcSyncPolicy::kDense:
                               return std::string("Dense");
                             case FcSyncPolicy::kHybrid:
                               return std::string("Hybrid");
                             case FcSyncPolicy::kOneBit:
                               return std::string("OneBit");
                             case FcSyncPolicy::kRingAllreduce:
                               return std::string("Ring");
                             case FcSyncPolicy::kTreeAllreduce:
                               return std::string("Tree");
                             default:
                               return std::string("Other");
                           }
                         });

TEST(EgressBatchingTest, ManyLayerModelBatchesPushes) {
  // A deeper model gives the batcher same-destination pushes to merge: the
  // wire message count must drop measurably, with an identical trajectory.
  const RunResult plain = TrainRun(FcSyncPolicy::kDense, 2, 2, 1, /*batch=*/false);
  const RunResult batched = TrainRun(FcSyncPolicy::kDense, 2, 2, 1, /*batch=*/true);
  EXPECT_EQ(plain.params, batched.params);
  EXPECT_LT(batched.wire_messages, plain.wire_messages)
      << "no frames were merged on a multi-layer PS run";
}

// SSP staleness > 0 legitimately reorders reads, so trajectories are only
// comparable batched-vs-batched; this guards the SSP reply-snapshot path
// (replies must not alias a slab a later apply can mutate).
TEST(EgressBatchingTest, SspRunIsDeterministicUnderBatching) {
  const SyntheticDataset dataset = testing::TinyDataset();
  TrainerOptions options = testing::SmallTrainerOptions(
      /*workers=*/3, /*servers=*/2, /*shards=*/1, /*staleness=*/1);
  options.kv_pair_bytes = 512;
  options.batch_egress = true;
  PoseidonTrainer trainer(testing::TinyMlpFactory(/*hidden_layers=*/2), options);
  const auto stats = trainer.Train(dataset, 12);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss) << "no learning under SSP";
}

}  // namespace
}  // namespace poseidon

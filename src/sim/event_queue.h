// Time-ordered event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a strict total order via
// a sequence number), which keeps simulations deterministic regardless of
// heap tie-breaking.
#ifndef POSEIDON_SRC_SIM_EVENT_QUEUE_H_
#define POSEIDON_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace poseidon {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void Push(double time, Callback callback);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Timestamp of the earliest event; CHECK-fails when empty.
  double PeekTime() const;

  // Removes and returns the earliest event's callback, setting *time.
  Callback Pop(double* time);

  void Clear();

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_SIM_EVENT_QUEUE_H_

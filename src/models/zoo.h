// The model zoo: architectural descriptors for every network the paper
// evaluates (Table 3), plus AlexNet, which §2.2 uses for its bandwidth
// arithmetic. Parameter counts match the published architectures (and the
// paper's Table 3) to within ~1%; per-layer FLOPs use the standard
// 2 * H * W * Cout * Cin * k^2 convolution cost.
#ifndef POSEIDON_SRC_MODELS_ZOO_H_
#define POSEIDON_SRC_MODELS_ZOO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/models/model_spec.h"

namespace poseidon {

// "CIFAR-10 quick" from Caffe: 3 conv + 2 FC, 145.6K params, batch 100.
ModelSpec MakeCifarQuick();
// AlexNet (Krizhevsky'12): 61.5M params, batch 256.
ModelSpec MakeAlexNet();
// GoogLeNet (Szegedy'15): 22 weight layers, ~6M params, batch 128.
ModelSpec MakeGoogLeNet();
// Inception-V3 (Szegedy'16) with the auxiliary head: ~27M params, batch 32.
ModelSpec MakeInceptionV3();
// VGG19 (Simonyan'15): 16 conv + 3 FC, 143M params, batch 32.
ModelSpec MakeVgg19();
// VGG19 with a 21841-way classifier for ImageNet22K: 229M params, batch 32.
ModelSpec MakeVgg19_22K();
// ResNet-152 (He'15): 60.2M params, batch 32.
ModelSpec MakeResNet152();

// All Table 3 models in the paper's order.
std::vector<ModelSpec> AllZooModels();

// Lookup by the names used in the benchmarks ("vgg19", "vgg19-22k",
// "googlenet", "inception-v3", "resnet-152", "cifar-quick", "alexnet").
StatusOr<ModelSpec> ModelByName(const std::string& name);

}  // namespace poseidon

#endif  // POSEIDON_SRC_MODELS_ZOO_H_

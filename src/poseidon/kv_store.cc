#include "src/poseidon/kv_store.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/poseidon/flat_params.h"
#include "src/simd/vec.h"
#include "src/stats/trace.h"
#include "src/tensor/ops.h"

namespace poseidon {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

KvShard::KvShard(int server_id, int shard_id, int64_t first_iter,
                 const Coordinator& coordinator, const std::vector<RuntimeScheme>& schemes,
                 Network& init_net, MessageBus* bus, const SgdConfig& sgd,
                 const std::vector<GradCompression>& compression)
    : server_(server_id),
      shard_(shard_id),
      staleness_(coordinator.cluster().staleness),
      coordinator_(coordinator),
      schemes_(schemes),
      compression_(compression),
      bus_(bus),
      optimizer_(sgd) {
  CHECK(compression_.empty() ||
        compression_.size() == static_cast<size_t>(coordinator.num_layers()));
  CHECK_NOTNULL(bus);
  CHECK_LT(shard_id, kMaxShardsPerServer);
  ssp_stall_hist_ = MetricsRegistry::Default().GetHistogram("kv.ssp_stall_ns");
  mailbox_ = bus_->Register(coordinator_.cluster().ShardAddress(server_, shard_));

  for (int l = 0; l < coordinator_.num_layers(); ++l) {
    if (schemes_[static_cast<size_t>(l)] == RuntimeScheme::kPsDense) {
      std::vector<KvPairInfo> owned = coordinator_.PairsOnShard(l, server_, shard_);
      if (owned.empty()) {
        continue;
      }
      FlatParamView view(init_net.layer(l).Params());
      DenseLayerState state;
      state.pairs.reserve(owned.size());
      int64_t total = 0;
      for (const KvPairInfo& info : owned) {
        total += info.length;
      }
      state.params = Payload::Allocate(total);
      int64_t slab_offset = 0;
      for (const KvPairInfo& info : owned) {
        PairState pair;
        pair.info = info;
        pair.slab_offset = slab_offset;
        view.GatherValueSlice(info.offset, state.params.data() + slab_offset, info.length);
        slab_offset += info.length;
        state.pairs.push_back(pair);
      }
      state.applied_clock = first_iter - 1;
      dense_layers_[l] = std::move(state);
    } else if (schemes_[static_cast<size_t>(l)] == RuntimeScheme::kOneBit &&
               coordinator_.OneBitOwnerServer(l) == server_ &&
               coordinator_.OneBitOwnerShard(l) == shard_) {
      const LayerInfo& info = coordinator_.layer(l);
      CHECK_GT(info.fc_m, 0) << "1-bit layers must be FC";
      OneBitLayerState state;
      FlatParamView view(init_net.layer(l).Params());
      state.value = Payload::Allocate(view.size());
      view.GatherValueSlice(0, state.value.data(), view.size());
      state.rows = info.fc_m;
      state.cols = info.fc_n;
      state.applied_clock = first_iter - 1;
      onebit_layers_[l] = std::move(state);
    }
  }
}

KvShard::~KvShard() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void KvShard::Start() {
  CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ServiceLoop(); });
}

void KvShard::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void KvShard::ServiceLoop() {
  while (true) {
    std::optional<Message> message = mailbox_->Pop();
    if (!message.has_value() || message->type == MessageType::kShutdown) {
      return;
    }
    switch (message->type) {
      case MessageType::kGradPush:
        HandleGradPush(*message);
        break;
      case MessageType::kOneBitPush:
        HandleOneBitPush(*message);
        break;
      default:
        LOG(Fatal) << "server " << server_ << " shard " << shard_
                   << ": unexpected message type";
    }
  }
}

GradCompression KvShard::layer_compression(int layer) const {
  if (compression_.empty()) {
    return GradCompression::kNone;
  }
  return compression_[static_cast<size_t>(layer)];
}

WireCodec KvShard::ExpectedPushCodec(GradCompression compression) {
  switch (compression) {
    case GradCompression::kNone:
      return WireCodec::kRawFloat;
    case GradCompression::kFp16:
      return WireCodec::kFp16;
    case GradCompression::kInt8:
      return WireCodec::kInt8;
    case GradCompression::kTopK:
      return WireCodec::kTopK;
  }
  return WireCodec::kRawFloat;
}

void KvShard::HandleGradPush(const Message& message) {
  ++pushes_processed_;
  auto it = dense_layers_.find(message.layer);
  CHECK(it != dense_layers_.end()) << "server " << server_ << " shard " << shard_
                                   << " owns no pairs of layer " << message.layer;
  DenseLayerState& state = it->second;
  const GradCompression compression = layer_compression(message.layer);
  if (compression == GradCompression::kNone) {
    CHECK(message.codec == WireCodec::kRawFloat);
  } else {
    // A compressed frame is sized by the sender, so treat it as wire input:
    // a codec mismatch or a frame that fails validation (or expands to the
    // wrong dense count) drops the push whole — no buffering, no reply —
    // instead of crashing the server or poisoning the clock's aggregate.
    const WireCodec expected = ExpectedPushCodec(compression);
    const Codec& codec = CodecRegistry::Get(expected);
    bool well_formed =
        message.codec == expected && message.chunks.size() == state.pairs.size();
    for (size_t p = 0; well_formed && p < state.pairs.size(); ++p) {
      const WireChunk& chunk = message.chunks[p];
      const StatusOr<int64_t> dense_count = codec.Validate(chunk.view);
      well_formed = chunk.offset == state.pairs[p].info.offset && dense_count.ok() &&
                    *dense_count == state.pairs[p].info.length;
    }
    if (!well_formed) {
      ++rejected_pushes_;
      LOG(Warning) << "server " << server_ << " shard " << shard_
                   << ": dropping malformed " << WireCodecName(message.codec)
                   << " push for layer " << message.layer << " from worker "
                   << message.worker << " (expected " << WireCodecName(expected) << ")";
      return;
    }
  }
  CHECK_EQ(message.chunks.size(), state.pairs.size());
  const int num_workers = coordinator_.cluster().num_workers;
  const int w = message.worker;
  const int64_t clock = message.iter;

  // Reconciliation: a replayed push (recovery, or an at-least-once link)
  // must never contribute to an aggregate twice. A clock at or below the
  // applied cursor buffers nothing; a filled per-worker slot keeps its first
  // contribution. Either way the (worker, clock) read is queued at most once
  // and released under the normal SSP gate, so the restarted worker still
  // gets its parameters.
  bool fresh = clock > state.applied_clock;
  if (fresh) {
    auto& per_worker = state.pending[clock];
    if (per_worker.empty()) {
      per_worker.resize(static_cast<size_t>(num_workers));
    }
    if (!per_worker[static_cast<size_t>(w)].empty()) {
      fresh = false;  // duplicate of a buffered contribution
    } else {
      max_push_lead_ = std::max(max_push_lead_, clock - state.applied_clock);
      // Buffer the sender's views zero-copy until this clock's aggregate is
      // applied; the sender will not overwrite its staging slab while a view
      // is live (see Syncer::MoveOut).
      std::vector<PayloadView> contribution;
      contribution.reserve(state.pairs.size());
      for (size_t p = 0; p < state.pairs.size(); ++p) {
        const WireChunk& chunk = message.chunks[p];
        CHECK_EQ(chunk.offset, state.pairs[p].info.offset);
        if (compression == GradCompression::kNone) {
          CHECK_EQ(chunk.view.size(), state.pairs[p].info.length);
        }
        contribution.push_back(chunk.view);
      }
      per_worker[static_cast<size_t>(w)] = std::move(contribution);
      ++state.push_count[clock];
    }
  }
  if (!fresh) {
    ++reconciled_pushes_;
  }
  AddWaitingRead(&state.waiting_reads, w, clock);

  // Apply strictly in clock order; a clock is complete once all workers'
  // pushes arrived. (A later clock can be complete early only under s > 0.)
  while (true) {
    auto next = state.push_count.find(state.applied_clock + 1);
    if (next == state.push_count.end() || next->second != num_workers) {
      break;
    }
    ApplyDense(message.layer, state.applied_clock + 1);
  }
  ReleaseDenseReads(message.layer);
}

void KvShard::ApplyDense(int layer, int64_t clock) {
  TraceSpan apply_span("kv.apply", "server", layer);
  const int num_workers = coordinator_.cluster().num_workers;
  DenseLayerState& state = dense_layers_[layer];
  const GradCompression compression = layer_compression(layer);
  const Codec* codec = compression == GradCompression::kNone
                           ? nullptr
                           : &CodecRegistry::Get(ExpectedPushCodec(compression));
  const auto pending = state.pending.find(clock);
  CHECK(pending != state.pending.end());
  Tensor decoded;
  for (size_t p = 0; p < state.pairs.size(); ++p) {
    PairState& pair = state.pairs[p];
    // Reduce in worker order for bit-deterministic results, reading each
    // contribution straight from the sender's slab (compressed frames are
    // expanded first; they were validated on arrival).
    std::vector<float> grad(static_cast<size_t>(pair.info.length), 0.0f);
    for (int w = 0; w < num_workers; ++w) {
      const PayloadView& contribution = pending->second[static_cast<size_t>(w)][p];
      if (codec == nullptr) {
        CHECK_EQ(contribution.size(), static_cast<int64_t>(grad.size()));
        simd::ReduceAdd(grad.data(), contribution.data(), pair.info.length);
      } else {
        const Status status = codec->Decode(contribution, &decoded, nullptr);
        CHECK(status.ok()) << status.ToString();
        CHECK_EQ(decoded.size(), pair.info.length);
        simd::ReduceAdd(grad.data(), decoded.data(), pair.info.length);
      }
    }
    const float inv = 1.0f / static_cast<float>(num_workers);
    simd::Scale(grad.data(), inv, pair.info.length);
    const std::string key =
        "l" + std::to_string(layer) + ".c" + std::to_string(pair.info.chunk);
    optimizer_.StepSlice(key, grad.data(), state.params.data() + pair.slab_offset,
                         pair.info.length);
  }
  state.pending.erase(pending);
  state.push_count.erase(clock);
  state.applied_clock = clock;
  ++applies_;
}

void KvShard::AddWaitingRead(std::vector<WaitingRead>* reads, int worker, int64_t clock) {
  for (const WaitingRead& read : *reads) {
    if (read.worker == worker && read.clock == clock) {
      return;  // a replayed push keeps the one pending reply it already has
    }
  }
  WaitingRead read;
  read.worker = worker;
  read.clock = clock;
  read.enqueue_ns = SteadyNowNs();
  reads->push_back(read);
}

void KvShard::RecordSspStall(const WaitingRead& read) {
  if (!read.deferred) {
    return;  // answered in the pass that queued it: never gated
  }
  const int64_t stall_ns = std::max<int64_t>(0, SteadyNowNs() - read.enqueue_ns);
  ssp_stall_ns_.fetch_add(stall_ns, std::memory_order_relaxed);
  ssp_stall_hist_->Record(stall_ns);
  if (Tracer::enabled()) {
    // Retroactive complete event: the stall started before this call stack.
    Tracer::Complete("kv.ssp_stall", "server", Tracer::NowNs() - stall_ns, stall_ns,
                     read.worker);
  }
}

void KvShard::SendReply(int layer, int worker, int64_t clock,
                        std::vector<WireChunk> chunks, WireCodec codec) {
  Message reply;
  reply.type = MessageType::kParamReply;
  reply.from = coordinator_.cluster().ShardAddress(server_, shard_);
  reply.to = Address{worker, kSyncerPortBase + layer};
  reply.layer = layer;
  reply.iter = clock;
  reply.codec = codec;
  reply.chunks = std::move(chunks);
  const Status status = bus_->Send(std::move(reply));
  if (status.code() == StatusCode::kNotFound ||
      status.code() == StatusCode::kUnavailable) {
    // The worker's endpoint died between push and release (crash window).
    // Its restarted incarnation will replay the push and earn a fresh reply.
    ++replies_dropped_;
    return;
  }
  CHECK(status.ok()) << status.ToString();
}

void KvShard::ReleaseDenseReads(int layer) {
  DenseLayerState& state = dense_layers_[layer];
  const GradCompression compression = layer_compression(layer);
  // One shared payload for every read released in this pass: the freshest
  // applied values. Under BSP the reply chunks alias the live parameter
  // slab (no copy): the next apply needs every worker's next push, which
  // happens only after each worker consumed its reply. Under SSP a later
  // clock can be applied while a stale reader is still scattering, so the
  // pass snapshots the slab instead. Compressed layers instead encode each
  // pair into a fresh binary16 round-to-nearest frame (stateless, so no
  // residual; the frame is a snapshot either way, hence SSP-safe).
  std::vector<WireChunk> reply_chunks;
  std::vector<WaitingRead> still_waiting;
  for (WaitingRead& read : state.waiting_reads) {
    if (state.applied_clock < read.clock - staleness_) {
      read.deferred = true;
      still_waiting.push_back(read);
      continue;
    }
    if (reply_chunks.empty()) {
      reply_chunks.reserve(state.pairs.size());
      if (compression != GradCompression::kNone) {
        for (const PairState& pair : state.pairs) {
          Payload frame = Fp16Codec::EncodeRn(state.params.data() + pair.slab_offset,
                                              pair.info.length, nullptr, 0);
          reply_chunks.push_back({pair.info.offset, frame.View()});
        }
      } else {
        Payload source = state.params;
        if (staleness_ > 0) {
          source = Payload::Allocate(state.params.size());
          std::copy(state.params.data(), state.params.data() + state.params.size(),
                    source.data());
          WireCopyStats::Add(state.params.size());
        }
        for (const PairState& pair : state.pairs) {
          reply_chunks.push_back(
              {pair.info.offset, source.View(pair.slab_offset, pair.info.length)});
        }
      }
    }
    max_reply_gap_ = std::max(max_reply_gap_,
                              std::max<int64_t>(0, read.clock - state.applied_clock));
    RecordSspStall(read);
    SendReply(layer, read.worker, read.clock, reply_chunks,
              compression == GradCompression::kNone ? WireCodec::kRawFloat
                                                    : WireCodec::kFp16);
  }
  state.waiting_reads = std::move(still_waiting);
}

void KvShard::HandleOneBitPush(const Message& message) {
  ++pushes_processed_;
  auto it = onebit_layers_.find(message.layer);
  CHECK(it != onebit_layers_.end());
  OneBitLayerState& state = it->second;
  CHECK(message.codec == WireCodec::kOneBit);
  CHECK_EQ(message.chunks.size(), 1u);
  const int num_workers = coordinator_.cluster().num_workers;
  const int w = message.worker;
  const int64_t clock = message.iter;

  // Same reconciliation as the dense path (see HandleGradPush).
  bool fresh = clock > state.applied_clock;
  if (fresh) {
    auto& frames = state.pending[clock];
    if (frames.empty()) {
      frames.resize(static_cast<size_t>(num_workers));
    }
    if (frames[static_cast<size_t>(w)].valid()) {
      fresh = false;
    } else {
      max_push_lead_ = std::max(max_push_lead_, clock - state.applied_clock);
      frames[static_cast<size_t>(w)] = message.chunks[0].view;
      ++state.push_count[clock];
    }
  }
  if (!fresh) {
    ++reconciled_pushes_;
  }
  AddWaitingRead(&state.waiting_reads, w, clock);

  while (true) {
    auto next = state.push_count.find(state.applied_clock + 1);
    if (next == state.push_count.end() || next->second != num_workers) {
      break;
    }
    ApplyOneBit(message.layer, state.applied_clock + 1);
  }
  ReleaseOneBitReads(message.layer);
}

void KvShard::ApplyOneBit(int layer, int64_t clock) {
  TraceSpan apply_span("kv.apply", "server", layer);
  const int num_workers = coordinator_.cluster().num_workers;
  OneBitLayerState& state = onebit_layers_[layer];
  const int64_t weight_floats = state.rows * state.cols;
  const auto pending = state.pending.find(clock);
  CHECK(pending != state.pending.end());

  // Decode and average the quantized weight gradients in worker order, then
  // the dense bias gradients, straight from the buffered frames.
  Tensor agg = Tensor::Zeros({state.rows, state.cols});
  std::vector<float> bias_agg(static_cast<size_t>(state.rows), 0.0f);
  Tensor dense;
  for (int w = 0; w < num_workers; ++w) {
    const PayloadView& frame = pending->second[static_cast<size_t>(w)];
    CHECK(frame.valid());
    const Status decoded = OneBitCodec::DecodeDense(frame, &dense);
    CHECK(decoded.ok()) << decoded.ToString();
    CHECK_EQ(dense.size(), weight_floats);
    Axpy(1.0f, dense, &agg);
    StatusOr<OneBitCodec::Frame> parsed = OneBitCodec::Parse(frame);
    CHECK(parsed.ok()) << parsed.status().ToString();
    CHECK_EQ(parsed->bias.size(), static_cast<int64_t>(bias_agg.size()));
    simd::ReduceAdd(bias_agg.data(), parsed->bias.data(), state.rows);
  }
  const float inv = 1.0f / static_cast<float>(num_workers);
  Scale(inv, &agg);
  simd::Scale(bias_agg.data(), inv, state.rows);
  const std::string key = "l" + std::to_string(layer);
  optimizer_.StepSlice(key + ".w", agg.data(), state.value.data(), weight_floats);
  optimizer_.StepSlice(key + ".b", bias_agg.data(), state.value.data() + weight_floats,
                       state.rows);
  state.pending.erase(pending);
  state.push_count.erase(clock);
  state.applied_clock = clock;
  ++applies_;
}

void KvShard::ReleaseOneBitReads(int layer) {
  OneBitLayerState& state = onebit_layers_[layer];
  std::vector<WireChunk> reply_chunks;
  std::vector<WaitingRead> still_waiting;
  for (WaitingRead& read : state.waiting_reads) {
    if (state.applied_clock < read.clock - staleness_) {
      read.deferred = true;
      still_waiting.push_back(read);
      continue;
    }
    if (reply_chunks.empty()) {
      // As on the dense path: alias the live slab under BSP, snapshot under
      // SSP (a later apply may overlap a stale reader).
      Payload source = state.value;
      if (staleness_ > 0) {
        source = Payload::Allocate(state.value.size());
        std::copy(state.value.data(), state.value.data() + state.value.size(),
                  source.data());
        WireCopyStats::Add(state.value.size());
      }
      reply_chunks.push_back({0, source.View()});
    }
    max_reply_gap_ = std::max(max_reply_gap_,
                              std::max<int64_t>(0, read.clock - state.applied_clock));
    RecordSspStall(read);
    SendReply(layer, read.worker, read.clock, reply_chunks);
  }
  state.waiting_reads = std::move(still_waiting);
}

KvServer::KvServer(int server_id, int64_t first_iter, const Coordinator& coordinator,
                   const std::vector<RuntimeScheme>& schemes, Network& init_net,
                   MessageBus* bus, const SgdConfig& sgd,
                   const std::vector<GradCompression>& compression)
    : id_(server_id) {
  const int shards = coordinator.cluster().shards_per_server;
  shards_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<KvShard>(server_id, s, first_iter, coordinator,
                                                schemes, init_net, bus, sgd, compression));
  }
}

void KvServer::Start() {
  for (auto& shard : shards_) {
    shard->Start();
  }
}

void KvServer::Join() {
  for (auto& shard : shards_) {
    shard->Join();
  }
}

int64_t KvServer::pushes_processed() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->pushes_processed();
  }
  return total;
}

int64_t KvServer::applies() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applies();
  }
  return total;
}

int64_t KvServer::reconciled_pushes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->reconciled_pushes();
  }
  return total;
}

int64_t KvServer::rejected_pushes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->rejected_pushes();
  }
  return total;
}

int64_t KvServer::replies_dropped() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->replies_dropped();
  }
  return total;
}

int KvServer::owned_layers() const {
  int total = 0;
  for (const auto& shard : shards_) {
    total += shard->owned_layers();
  }
  return total;
}

int64_t KvServer::max_push_lead() const {
  int64_t lead = 0;
  for (const auto& shard : shards_) {
    lead = std::max(lead, shard->max_push_lead());
  }
  return lead;
}

int64_t KvServer::max_reply_gap() const {
  int64_t gap = 0;
  for (const auto& shard : shards_) {
    gap = std::max(gap, shard->max_reply_gap());
  }
  return gap;
}

int64_t KvServer::SspStallNs() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->ssp_stall_ns();
  }
  return total;
}

}  // namespace poseidon

// One KV-store shard (paper §4.1): holds its slice of the globally shared
// parameters as fixed-size KV pairs, applies aggregated gradient updates
// with bulk-synchronous consistency, and broadcasts fresh values.
//
// BSP is implemented exactly as the paper describes: every pair keeps a
// per-iteration count of applied updates; once the count reaches the number
// of workers, the pair's updated value is sent to all workers via the
// shard's Send path. Gradients are folded per worker slot and reduced in
// worker order, making the served values bit-deterministic regardless of
// message arrival order.
#ifndef POSEIDON_SRC_POSEIDON_KV_STORE_H_
#define POSEIDON_SRC_POSEIDON_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/nn/network.h"
#include "src/nn/sgd.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/transport/bus.h"

namespace poseidon {

class KvServer {
 public:
  // `init_net` supplies initial parameter values (every worker starts from
  // the same replica). The server owns the master copy — and the optimizer
  // state — for every KV pair the coordinator hashed to `server_id`, plus
  // whole-layer state for 1-bit layers it owns.
  KvServer(int server_id, const Coordinator& coordinator,
           const std::vector<RuntimeScheme>& schemes, Network& init_net, MessageBus* bus,
           const SgdConfig& sgd);
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Spawns the service thread (Receive/Send loop).
  void Start();
  // Joins after a kShutdown message has been delivered.
  void Join();

  int id() const { return id_; }
  // Number of gradient-push messages processed (for tests).
  int64_t pushes_processed() const { return pushes_processed_; }

 private:
  struct PairState {
    KvPairInfo info;
    std::vector<float> value;
    std::vector<std::vector<float>> pending;  // per worker
    int count = 0;
  };
  struct OneBitLayerState {
    std::vector<float> value;  // whole flattened layer (weight then bias)
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<std::shared_ptr<OneBitEncoded>> pending_enc;   // per worker
    std::vector<std::shared_ptr<std::vector<float>>> pending_bias;
    int count = 0;
  };

  void ServiceLoop();
  void HandleGradPush(const Message& message);
  void HandleOneBitPush(const Message& message);
  void ApplyAndBroadcast(int layer);
  void ApplyAndBroadcastOneBit(int layer);

  const int id_;
  const Coordinator& coordinator_;
  const std::vector<RuntimeScheme> schemes_;
  MessageBus* bus_;
  SgdOptimizer optimizer_;
  std::shared_ptr<MessageBus::Mailbox> mailbox_;
  std::thread thread_;

  // layer -> pairs owned by this shard; layer-level BSP push counts.
  std::unordered_map<int, std::vector<PairState>> pairs_;
  std::unordered_map<int, int> layer_push_count_;
  std::unordered_map<int, OneBitLayerState> onebit_layers_;
  int64_t pushes_processed_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_KV_STORE_H_

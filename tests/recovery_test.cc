// Crash-recovery protocol tests: kill a worker mid-iteration, let the
// heartbeat failure detector notice, restart from the latest checkpoint,
// replay the in-flight clock, and verify exactly-once application on every
// shard plus (under BSP) bitwise-correct final parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/poseidon/failure_detector.h"
#include "src/poseidon/trainer.h"
#include "src/transport/bus.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

using testing::AllParams;
using testing::SmallTrainerOptions;
using testing::TinyDataset;
using testing::TinyMlpFactory;

constexpr int kIters = 10;

TrainerOptions RecoveryOptions(int staleness = 0) {
  TrainerOptions options =
      SmallTrainerOptions(/*workers=*/3, /*servers=*/2, /*shards=*/2, staleness);
  options.failure_detection.enabled = true;
  options.failure_detection.heartbeat_interval_ms = 5;
  options.failure_detection.suspect_after_ms = 100;
  options.checkpoint_dir = ::testing::TempDir();
  options.checkpoint_every = 1;  // bitwise recovery needs the k-1 snapshot
  return options;
}

/// Shard-side exactly-once accounting: every owned layer applied one
/// aggregate per clock — no more (despite replayed pushes), no fewer.
void ExpectExactlyOnceApplies(const PoseidonTrainer& trainer, int num_servers,
                              int iterations) {
  for (int s = 0; s < num_servers; ++s) {
    EXPECT_EQ(trainer.server(s).applies(),
              static_cast<int64_t>(trainer.server(s).owned_layers()) * iterations)
        << "server " << s << " applied an aggregate zero or multiple times";
  }
}

int64_t TotalReconciled(const PoseidonTrainer& trainer, int num_servers) {
  int64_t total = 0;
  for (int s = 0; s < num_servers; ++s) {
    total += trainer.server(s).reconciled_pushes();
  }
  return total;
}

TEST(RecoveryTest, CrashMidBackwardRecoversBitwise) {
  // Worker 1 dies during iteration 5 after pushing only its top layers: the
  // worst window (shards hold a partial clock). The replay must complete the
  // clock with bit-identical recomputed gradients.
  const SyntheticDataset dataset = TinyDataset();

  TrainerOptions clean_options = SmallTrainerOptions(/*workers=*/3, /*servers=*/2,
                                                     /*shards=*/2, /*staleness=*/0);
  PoseidonTrainer clean(TinyMlpFactory(), clean_options);
  clean.Train(dataset, kIters);
  const std::vector<float> clean_params = AllParams(clean.worker_net(0));

  TrainerOptions options = RecoveryOptions();
  options.crash = CrashPlan{/*worker=*/1, /*iter=*/5, /*layers_before_crash=*/2};
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  const auto stats = trainer.Train(dataset, kIters);
  EXPECT_EQ(trainer.next_iter(), kIters);
  EXPECT_EQ(trainer.recoveries(), 1);
  ASSERT_NE(trainer.failure_detector(), nullptr);
  EXPECT_EQ(trainer.failure_detector()->suspicions(1), 1);
  EXPECT_FALSE(trainer.failure_detector()->suspected(1)) << "recovery never cleared";

  // Every replica — including the restarted one — must land on the clean
  // parameters, bit for bit.
  EXPECT_EQ(AllParams(trainer.worker_net(0)), clean_params);
  EXPECT_EQ(AllParams(trainer.worker_net(1)), clean_params)
      << "the restarted worker diverged";
  ExpectExactlyOnceApplies(trainer, options.num_servers, kIters);
  EXPECT_GT(TotalReconciled(trainer, options.num_servers), 0)
      << "the replay never re-pushed anything the shards had seen; the crash "
         "window was vacuous";
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
}

TEST(RecoveryTest, CrashAfterFullSendRecoversBitwise) {
  // The other window: every push of the in-flight clock already left the
  // process; the crash lands between send and receive. The whole replayed
  // clock reconciles (every push is a duplicate) and the restarted worker
  // re-earns its replies.
  const SyntheticDataset dataset = TinyDataset();

  TrainerOptions clean_options = SmallTrainerOptions(/*workers=*/3, /*servers=*/2,
                                                     /*shards=*/2, /*staleness=*/0);
  PoseidonTrainer clean(TinyMlpFactory(), clean_options);
  clean.Train(dataset, kIters);
  const std::vector<float> clean_params = AllParams(clean.worker_net(0));

  TrainerOptions options = RecoveryOptions();
  options.crash = CrashPlan{/*worker=*/2, /*iter=*/4, /*layers_before_crash=*/1000};
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  trainer.Train(dataset, kIters);
  EXPECT_EQ(trainer.recoveries(), 1);
  EXPECT_EQ(AllParams(trainer.worker_net(0)), clean_params);
  EXPECT_EQ(AllParams(trainer.worker_net(2)), clean_params);
  ExpectExactlyOnceApplies(trainer, options.num_servers, kIters);
  EXPECT_GT(TotalReconciled(trainer, options.num_servers), 0);
}

TEST(RecoveryTest, CrashBeforeAnyPushRecoversBitwise) {
  // Degenerate window: the worker dies before pushing anything, so the
  // replay is the first (and only) push of its in-flight clock.
  const SyntheticDataset dataset = TinyDataset();

  TrainerOptions clean_options = SmallTrainerOptions(/*workers=*/3, /*servers=*/2,
                                                     /*shards=*/2, /*staleness=*/0);
  PoseidonTrainer clean(TinyMlpFactory(), clean_options);
  clean.Train(dataset, kIters);
  const std::vector<float> clean_params = AllParams(clean.worker_net(0));

  TrainerOptions options = RecoveryOptions();
  options.crash = CrashPlan{/*worker=*/1, /*iter=*/7, /*layers_before_crash=*/0};
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  trainer.Train(dataset, kIters);
  EXPECT_EQ(trainer.recoveries(), 1);
  EXPECT_EQ(AllParams(trainer.worker_net(1)), clean_params);
  ExpectExactlyOnceApplies(trainer, options.num_servers, kIters);
}

TEST(RecoveryTest, CrashOnTheMonitorNodeKeepsDetectionAlive) {
  // Worker 0 shares its node with the coordinator's monitor mailbox. Its
  // death fences only the worker process's data endpoints — liveness
  // monitoring (and therefore its own recovery) must survive.
  const SyntheticDataset dataset = TinyDataset();

  TrainerOptions clean_options = SmallTrainerOptions(/*workers=*/3, /*servers=*/2,
                                                     /*shards=*/2, /*staleness=*/0);
  PoseidonTrainer clean(TinyMlpFactory(), clean_options);
  clean.Train(dataset, kIters);
  const std::vector<float> clean_params = AllParams(clean.worker_net(0));

  TrainerOptions options = RecoveryOptions();
  options.crash = CrashPlan{/*worker=*/0, /*iter=*/5, /*layers_before_crash=*/2};
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  trainer.Train(dataset, kIters);
  EXPECT_EQ(trainer.recoveries(), 1)
      << "killing the monitor-node worker took the failure detector down";
  EXPECT_EQ(AllParams(trainer.worker_net(0)), clean_params);
  ExpectExactlyOnceApplies(trainer, options.num_servers, kIters);
}

TEST(RecoveryTest, RestartDuringSspCatchesUpWithinTheBound) {
  // Under s = 2 the survivors run ahead while worker 1 is down; the restart
  // replays its in-flight clock and catches up. The SSP invariants must hold
  // over the whole run — crash, gap, and catch-up included — and every
  // aggregate still applies exactly once.
  const SyntheticDataset dataset = TinyDataset();
  TrainerOptions options = RecoveryOptions(/*staleness=*/2);
  options.crash = CrashPlan{/*worker=*/1, /*iter=*/5, /*layers_before_crash=*/2};
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  const auto stats = trainer.Train(dataset, 12);
  EXPECT_EQ(trainer.recoveries(), 1);
  EXPECT_EQ(trainer.next_iter(), 12);
  for (int s = 0; s < options.num_servers; ++s) {
    EXPECT_LE(trainer.server(s).max_reply_gap(), options.staleness)
        << "recovery broke the SSP staleness bound";
    EXPECT_LE(trainer.server(s).max_push_lead(), options.staleness + 1)
        << "a worker overran the SSP lead bound during the outage";
  }
  ExpectExactlyOnceApplies(trainer, options.num_servers, 12);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
}

TEST(RecoveryTest, RecoveryComposesWithTransportChaos) {
  // Crash + restart while the network itself drops, duplicates and reorders:
  // transport dedup handles the weather, shard reconciliation handles the
  // replay, and the two layers must not confuse each other. BSP stays
  // bitwise correct.
  const SyntheticDataset dataset = TinyDataset();

  TrainerOptions clean_options = SmallTrainerOptions(/*workers=*/3, /*servers=*/2,
                                                     /*shards=*/2, /*staleness=*/0);
  PoseidonTrainer clean(TinyMlpFactory(), clean_options);
  clean.Train(dataset, kIters);
  const std::vector<float> clean_params = AllParams(clean.worker_net(0));

  TrainerOptions options = RecoveryOptions();
  options.crash = CrashPlan{/*worker=*/1, /*iter=*/5, /*layers_before_crash=*/2};
  options.fault_plan.seed = testing::ChaosSeeds(1)[0];
  options.fault_plan.duplicate_prob = 0.1;
  options.fault_plan.delay_prob = 0.2;
  options.fault_plan.delay_max_us = 200;
  options.fault_plan.drop_prob = 0.02;
  options.fault_plan.retransmit_timeout_us = 100;
  // Delays must stay well under the suspicion deadline or the detector
  // false-positives on live workers (the documented trade-off).
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  trainer.Train(dataset, kIters);
  EXPECT_EQ(trainer.recoveries(), 1);
  EXPECT_EQ(AllParams(trainer.worker_net(0)), clean_params);
  EXPECT_EQ(AllParams(trainer.worker_net(1)), clean_params);
  ExpectExactlyOnceApplies(trainer, options.num_servers, kIters);
}

// ------------------------------------------------------- failure detector --

TEST(FailureDetectorTest, SuspectsSilentWorkerOncePerEpisode) {
  MessageBus bus(2);
  FailureDetectorOptions options;
  options.enabled = true;
  options.heartbeat_interval_ms = 5;
  options.suspect_after_ms = 60;

  std::mutex mutex;
  std::condition_variable cv;
  int suspected_worker = -1;
  int callbacks = 0;
  FailureDetector detector(&bus, /*num_workers=*/2, options, [&](int w) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      suspected_worker = w;
      ++callbacks;
    }
    cv.notify_all();
  });
  detector.Start();
  HeartbeatTicker ticker0(0, &bus, options);
  HeartbeatTicker ticker1(1, &bus, options);

  // "A couple of suspicion deadlines elapsed" counted in completed detector
  // scans rather than wall-clock sleeps, so a stalled CI box can never
  // undercut the negative assertions below.
  const int64_t scans_per_deadline =
      options.suspect_after_ms / std::max(1, options.heartbeat_interval_ms / 2);
  auto await_deadlines = [&](int n) {
    return detector.AwaitScans(n * scans_per_deadline, /*timeout_ms=*/30000);
  };

  // Both beating: nobody suspected across a couple of deadlines.
  ASSERT_TRUE(await_deadlines(2));
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(callbacks, 0);
  }

  ticker1.Stop();  // worker 1 "dies"
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return callbacks > 0; }))
        << "silent worker never suspected";
    EXPECT_EQ(callbacks, 1);
    EXPECT_EQ(suspected_worker, 1);
  }
  EXPECT_TRUE(detector.suspected(1));
  EXPECT_FALSE(detector.suspected(0)) << "live worker wrongly suspected";

  // Exactly one callback per episode, even while the worker stays dead.
  ASSERT_TRUE(await_deadlines(2));
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(callbacks, 1);
  }

  // Recovery: resume beats, clear the suspicion; no further callbacks.
  ticker1.Resume();
  detector.NotifyRecovered(1);
  ASSERT_TRUE(await_deadlines(2));
  EXPECT_FALSE(detector.suspected(1));
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(callbacks, 1);
  }
  EXPECT_EQ(detector.suspicions(1), 1);
}

}  // namespace
}  // namespace poseidon

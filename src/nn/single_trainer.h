// Sequential single-node trainer: the "unmodified Caffe/TensorFlow on one
// GPU" baseline. Used by the BSP-equivalence tests (distributed training
// with aggregate batch B must match single-node training with batch B) and
// as the reference curve in the convergence benchmarks.
#ifndef POSEIDON_SRC_NN_SINGLE_TRAINER_H_
#define POSEIDON_SRC_NN_SINGLE_TRAINER_H_

#include <vector>

#include "src/nn/dataset.h"
#include "src/nn/network.h"
#include "src/nn/sgd.h"

namespace poseidon {

struct SingleNodeStats {
  int64_t iter = 0;
  double loss = 0.0;
  double accuracy = 0.0;
};

// Runs `iterations` of plain mini-batch SGD on `net`, starting from sample
// stream position `first_iter` (so it lines up with a PoseidonTrainer that
// already consumed first_iter batches).
std::vector<SingleNodeStats> TrainSingleNode(Network& net, const SyntheticDataset& dataset,
                                             SgdOptimizer& optimizer, int iterations,
                                             int batch, int64_t first_iter = 0);

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_SINGLE_TRAINER_H_

#include "src/transport/rate_limiter.h"

#include <algorithm>
#include <thread>

#include "src/common/logging.h"

namespace poseidon {

RateLimiter::RateLimiter(double bytes_per_sec, double burst_bytes)
    : bytes_per_sec_(bytes_per_sec),
      burst_bytes_(burst_bytes),
      tokens_(burst_bytes),
      last_refill_(std::chrono::steady_clock::now()) {
  CHECK_GT(bytes_per_sec, 0.0);
  CHECK_GT(burst_bytes, 0.0);
}

void RateLimiter::Refill() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_bytes_, tokens_ + elapsed * bytes_per_sec_);
}

void RateLimiter::Acquire(int64_t bytes) {
  CHECK_GE(bytes, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  double needed = static_cast<double>(bytes);
  while (true) {
    Refill();
    // Large messages drain the bucket in burst-sized installments so that
    // concurrent senders interleave rather than convoy.
    const double take = std::min(needed, std::max(tokens_, 0.0));
    tokens_ -= take;
    needed -= take;
    if (needed <= 0.0) {
      return;
    }
    const double wait_s = std::min(needed, burst_bytes_) / bytes_per_sec_;
    ++waiters_;
    waiter_cv_.notify_all();
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    lock.lock();
    --waiters_;
  }
}

int RateLimiter::current_waiters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiters_;
}

bool RateLimiter::WaitUntilBlocked(int waiters, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return waiter_cv_.wait_for(lock, timeout, [&] { return waiters_ >= waiters; });
}

}  // namespace poseidon

/// \file
/// Token-bucket egress limiter (wall-clock). Acquire(bytes) blocks the caller
/// until the bucket holds enough tokens, emulating a NIC that serializes a
/// node's outgoing traffic at a fixed rate.
#ifndef POSEIDON_SRC_TRANSPORT_RATE_LIMITER_H_
#define POSEIDON_SRC_TRANSPORT_RATE_LIMITER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace poseidon {

class RateLimiter {
 public:
  // bytes_per_sec > 0; burst_bytes bounds how much can be sent back-to-back.
  RateLimiter(double bytes_per_sec, double burst_bytes = 256 * 1024.0);

  // Blocks until `bytes` tokens are available, then consumes them.
  void Acquire(int64_t bytes);

  double bytes_per_sec() const { return bytes_per_sec_; }

  // Callers currently blocked inside Acquire waiting for tokens.
  int current_waiters() const;

  // Blocks until at least `waiters` callers are waiting inside Acquire, or
  // `timeout` elapses; returns whether the condition was met. Lets tests
  // synchronize on "the sender is throttled now" with a condition variable
  // instead of a sleep (delay injection makes sleep-based timing flaky).
  bool WaitUntilBlocked(int waiters,
                        std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

 private:
  void Refill();

  const double bytes_per_sec_;
  const double burst_bytes_;
  mutable std::mutex mutex_;
  std::condition_variable waiter_cv_;
  int waiters_ = 0;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_RATE_LIMITER_H_

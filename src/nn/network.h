// A feed-forward network: an ordered layer stack plus a softmax
// cross-entropy head. Exposes the per-layer stepping interface Poseidon's
// trainer needs (Algorithm 2): Forward(), then BackwardThrough(l) from the
// top layer down, so layer l's gradient is complete — and synchronizable —
// while lower layers are still computing.
#ifndef POSEIDON_SRC_NN_NETWORK_H_
#define POSEIDON_SRC_NN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layer.h"
#include "src/tensor/tensor.h"

namespace poseidon {

// Softmax + cross-entropy over logits [K, classes] with integer labels.
struct LossResult {
  double loss = 0.0;      // mean over the batch
  double accuracy = 0.0;  // top-1
};

LossResult SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                               Tensor* grad_logits);

class Network {
 public:
  Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void Add(std::unique_ptr<Layer> layer);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }

  // Runs the forward pass and the loss head; caches everything Backward
  // needs. Labels are mean-reduced, so gradients are per-sample averages.
  LossResult Forward(const Tensor& batch, const std::vector<int>& labels);

  // Runs the backward pass for layer `l` only (top = num_layers()-1 first).
  // Must be called in strictly descending order after Forward.
  void BackwardThrough(int l);

  // Convenience: full backward pass.
  void Backward();

  // All parameters, bottom to top, grouped per layer.
  std::vector<std::vector<ParamBlock>> LayerParams();

  int64_t total_params();

  // Evaluates mean loss/accuracy without touching gradients or caches used
  // by a concurrent training iteration? No -- reuses the same buffers; call
  // between iterations only.
  LossResult Evaluate(const Tensor& batch, const std::vector<int>& labels);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Tensor grad_cursor_;   // d(loss)/d(output of layer next_backward_)
  int next_backward_ = -1;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_NETWORK_H_

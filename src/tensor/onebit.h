// CNTK-style 1-bit gradient quantization with error feedback (Seide et al.,
// INTERSPEECH'14; used as the comparison baseline in Poseidon §5.3).
//
// Encoding a gradient tensor G with carried residual R:
//   Q = G + R                     (error feedback: add what was lost before)
//   sign bits  b_i = Q_i >= 0
//   per-column reconstruction values: mean of positive entries (for b=1) and
//   mean of negative entries (for b=0), the mean-square-optimal 2-level
//   quantizer given the sign split
//   R' = Q - Decode(bits)         (new residual, kept locally)
//
// Wire size: 1 bit per element + two floats per column, vs 32 bits per
// element for the exact gradient — a 32x reduction that trades statistical
// efficiency, which is exactly the trade-off Figure 11 measures.
#ifndef POSEIDON_SRC_TENSOR_ONEBIT_H_
#define POSEIDON_SRC_TENSOR_ONEBIT_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace poseidon {

struct OneBitEncoded {
  int64_t rows = 0;
  int64_t cols = 0;
  // Row-major sign bits, packed 32 per word.
  std::vector<uint32_t> bits;
  // Per-column reconstruction levels.
  std::vector<float> positive_level;
  std::vector<float> negative_level;

  // Bytes this message occupies on the wire.
  int64_t WireBytes() const;
};

class OneBitQuantizer {
 public:
  OneBitQuantizer() = default;

  // Quantizes `gradient` (2-D), folding in and updating the internal
  // residual. The residual tensor is lazily initialized to zeros with the
  // gradient's shape on first use.
  OneBitEncoded Encode(const Tensor& gradient);

  // Reconstructs a dense tensor from the encoding.
  static Tensor Decode(const OneBitEncoded& encoded);

  const Tensor& residual() const { return residual_; }

 private:
  Tensor residual_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TENSOR_ONEBIT_H_

// Regenerates Figure 11: training loss and test error vs iteration for the
// CIFAR-10-quick network trained on 4 workers, comparing Poseidon's exact
// synchronization against 1-bit quantization with error feedback
// (Poseidon-1bit). Both run through the real threaded runtime with real
// gradients, so the statistical contrast — 1-bit converging slower/worse —
// is measured, not modeled.
//
// Default configuration is a reduced-resolution variant (16x16 synthetic
// images, smaller batch) so the bench finishes in about a minute on one CPU
// core; pass --full for the paper-sized 32x32 / batch-100 network.
#include <cstdio>
#include <cstdlib>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"

namespace poseidon {
namespace {

struct RunConfig {
  int image_hw = 16;
  int batch_per_worker = 8;  // 4 workers -> aggregate batch 32
  int iterations = 200;
  int report_every = 25;
};

struct Curve {
  std::vector<double> loss;
  std::vector<double> test_error;
};

Curve RunOne(const RunConfig& config, FcSyncPolicy policy,
             const SyntheticDataset& dataset) {
  NetworkFactory factory = [&config] {
    Rng rng(20170711);
    return BuildCifarQuick(/*channels=*/3, config.image_hw, /*classes=*/10, rng);
  };
  TrainerOptions options;
  options.num_workers = 4;
  options.num_servers = 4;
  options.batch_per_worker = config.batch_per_worker;
  options.sgd = {.learning_rate = 0.01f, .momentum = 0.9f, .weight_decay = 1e-4f};
  options.fc_policy = policy;
  PoseidonTrainer trainer(factory, options);

  Curve curve;
  for (int done = 0; done < config.iterations; done += config.report_every) {
    const int chunk = std::min(config.report_every, config.iterations - done);
    const auto stats = trainer.Train(dataset, chunk);
    curve.loss.push_back(stats.back().mean_loss);
    curve.test_error.push_back(1.0 - trainer.EvaluateTest(dataset).accuracy);
  }
  return curve;
}

void Run(const BenchArgs& args) {
  if (args.full && args.fast) {
    std::fprintf(stderr, "--full and --fast are contradictory; pick one\n");
    std::exit(2);
  }
  const bool full = args.full;
  RunConfig config;
  if (full) {
    config.image_hw = 32;
    config.batch_per_worker = 25;  // aggregate 100, the paper's batch size
    config.iterations = 300;
    config.report_every = 25;
  }
  config.iterations = args.ItersOr(config.iterations, /*fast_iters=*/50);

  DatasetConfig data_config;
  data_config.num_classes = 10;
  data_config.channels = 3;
  data_config.height = config.image_hw;
  data_config.width = config.image_hw;
  data_config.train_size = 512;
  data_config.test_size = 200;
  data_config.noise_stddev = 0.5f;
  data_config.seed = 101;
  SyntheticDataset dataset(data_config);

  std::printf("Fig 11: CIFAR-10-quick on 4 workers: exact sync (Poseidon) vs 1-bit\n");
  std::printf("quantization with residual (Poseidon-1bit). %s configuration.\n\n",
              full ? "Full 32x32" : "Reduced 16x16 (use --full for paper-size)");

  const Curve exact = RunOne(config, FcSyncPolicy::kHybrid, dataset);
  const Curve onebit = RunOne(config, FcSyncPolicy::kOneBit, dataset);

  TextTable table({"iter", "loss exact", "loss 1bit", "test-err exact", "test-err 1bit"});
  for (size_t i = 0; i < exact.loss.size(); ++i) {
    table.AddRow({std::to_string((i + 1) * static_cast<size_t>(config.report_every)),
                  TextTable::Num(exact.loss[i], 3), TextTable::Num(onebit.loss[i], 3),
                  TextTable::Num(exact.test_error[i], 3),
                  TextTable::Num(onebit.test_error[i], 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

#include "src/poseidon/kv_store.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/poseidon/flat_params.h"
#include "src/tensor/ops.h"

namespace poseidon {

KvServer::KvServer(int server_id, const Coordinator& coordinator,
                   const std::vector<RuntimeScheme>& schemes, Network& init_net,
                   MessageBus* bus, const SgdConfig& sgd)
    : id_(server_id),
      coordinator_(coordinator),
      schemes_(schemes),
      bus_(bus),
      optimizer_(sgd) {
  CHECK_NOTNULL(bus);
  mailbox_ = bus_->Register(Address{id_, kServerPort});

  const int num_workers = coordinator_.cluster().num_workers;
  const int num_servers = coordinator_.cluster().num_servers;
  for (int l = 0; l < coordinator_.num_layers(); ++l) {
    if (schemes_[static_cast<size_t>(l)] == RuntimeScheme::kPsDense) {
      std::vector<KvPairInfo> owned = coordinator_.PairsOnServer(l, id_);
      if (owned.empty()) {
        continue;
      }
      FlatParamView view(init_net.layer(l).Params());
      std::vector<PairState> states;
      states.reserve(owned.size());
      for (const KvPairInfo& info : owned) {
        PairState state;
        state.info = info;
        state.value.resize(static_cast<size_t>(info.length));
        view.GatherValueSlice(info.offset, &state.value);
        state.pending.assign(static_cast<size_t>(num_workers), {});
        states.push_back(std::move(state));
      }
      pairs_[l] = std::move(states);
      layer_push_count_[l] = 0;
    } else if (schemes_[static_cast<size_t>(l)] == RuntimeScheme::kOneBit &&
               l % num_servers == id_) {
      const LayerInfo& info = coordinator_.layer(l);
      CHECK_GT(info.fc_m, 0) << "1-bit layers must be FC";
      OneBitLayerState state;
      FlatParamView view(init_net.layer(l).Params());
      state.value = view.GatherValues();
      state.rows = info.fc_m;
      state.cols = info.fc_n;
      state.pending_enc.assign(static_cast<size_t>(num_workers), nullptr);
      state.pending_bias.assign(static_cast<size_t>(num_workers), nullptr);
      onebit_layers_[l] = std::move(state);
      layer_push_count_[l] = 0;
    }
  }
}

KvServer::~KvServer() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void KvServer::Start() {
  CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ServiceLoop(); });
}

void KvServer::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void KvServer::ServiceLoop() {
  while (true) {
    std::optional<Message> message = mailbox_->Pop();
    if (!message.has_value() || message->type == MessageType::kShutdown) {
      return;
    }
    switch (message->type) {
      case MessageType::kGradPush:
        HandleGradPush(*message);
        break;
      case MessageType::kOneBitPush:
        HandleOneBitPush(*message);
        break;
      default:
        LOG(Fatal) << "server " << id_ << ": unexpected message type";
    }
  }
}

void KvServer::HandleGradPush(const Message& message) {
  ++pushes_processed_;
  auto it = pairs_.find(message.layer);
  CHECK(it != pairs_.end()) << "server " << id_ << " owns no pairs of layer "
                            << message.layer;
  std::vector<PairState>& states = it->second;
  CHECK_NOTNULL(message.chunks.get());
  CHECK_EQ(message.chunks->size(), states.size());
  const int w = message.worker;
  for (size_t p = 0; p < states.size(); ++p) {
    const ChunkPayload& chunk = (*message.chunks)[p];
    CHECK_EQ(chunk.offset, states[p].info.offset);
    CHECK_EQ(static_cast<int64_t>(chunk.data.size()), states[p].info.length);
    states[p].pending[static_cast<size_t>(w)] = chunk.data;
  }
  if (++layer_push_count_[message.layer] == coordinator_.cluster().num_workers) {
    ApplyAndBroadcast(message.layer);
  }
}

void KvServer::ApplyAndBroadcast(int layer) {
  const int num_workers = coordinator_.cluster().num_workers;
  std::vector<PairState>& states = pairs_[layer];
  auto reply_chunks = std::make_shared<std::vector<ChunkPayload>>();
  reply_chunks->reserve(states.size());
  for (PairState& state : states) {
    // Reduce in worker order for bit-deterministic results.
    std::vector<float> grad(static_cast<size_t>(state.info.length), 0.0f);
    for (int w = 0; w < num_workers; ++w) {
      const std::vector<float>& contribution = state.pending[static_cast<size_t>(w)];
      CHECK_EQ(contribution.size(), grad.size());
      for (size_t i = 0; i < grad.size(); ++i) {
        grad[i] += contribution[i];
      }
      state.pending[static_cast<size_t>(w)].clear();
    }
    const float inv = 1.0f / static_cast<float>(num_workers);
    for (float& g : grad) {
      g *= inv;
    }
    const std::string key =
        "l" + std::to_string(layer) + ".c" + std::to_string(state.info.chunk);
    optimizer_.StepSlice(key, grad.data(), state.value.data(), state.info.length);

    ChunkPayload chunk;
    chunk.offset = state.info.offset;
    chunk.data = state.value;
    reply_chunks->push_back(std::move(chunk));
  }
  layer_push_count_[layer] = 0;

  for (int w = 0; w < num_workers; ++w) {
    Message reply;
    reply.type = MessageType::kParamReply;
    reply.from = Address{id_, kServerPort};
    reply.to = Address{w, kSyncerPortBase + layer};
    reply.layer = layer;
    reply.chunks = reply_chunks;
    const Status status = bus_->Send(std::move(reply));
    CHECK(status.ok()) << status.ToString();
  }
}

void KvServer::HandleOneBitPush(const Message& message) {
  ++pushes_processed_;
  auto it = onebit_layers_.find(message.layer);
  CHECK(it != onebit_layers_.end());
  OneBitLayerState& state = it->second;
  CHECK_NOTNULL(message.onebit.get());
  state.pending_enc[static_cast<size_t>(message.worker)] = message.onebit;
  state.pending_bias[static_cast<size_t>(message.worker)] = message.bias_grad;
  if (++layer_push_count_[message.layer] == coordinator_.cluster().num_workers) {
    ApplyAndBroadcastOneBit(message.layer);
  }
}

void KvServer::ApplyAndBroadcastOneBit(int layer) {
  const int num_workers = coordinator_.cluster().num_workers;
  OneBitLayerState& state = onebit_layers_[layer];
  const int64_t weight_floats = state.rows * state.cols;

  // Decode and average the quantized weight gradients in worker order, then
  // the dense bias gradients.
  Tensor agg = Tensor::Zeros({state.rows, state.cols});
  std::vector<float> bias_agg(static_cast<size_t>(state.rows), 0.0f);
  for (int w = 0; w < num_workers; ++w) {
    const Tensor dense = OneBitQuantizer::Decode(*state.pending_enc[static_cast<size_t>(w)]);
    Axpy(1.0f, dense, &agg);
    const std::vector<float>& bias = *state.pending_bias[static_cast<size_t>(w)];
    CHECK_EQ(bias.size(), bias_agg.size());
    for (size_t i = 0; i < bias.size(); ++i) {
      bias_agg[i] += bias[i];
    }
    state.pending_enc[static_cast<size_t>(w)] = nullptr;
    state.pending_bias[static_cast<size_t>(w)] = nullptr;
  }
  const float inv = 1.0f / static_cast<float>(num_workers);
  Scale(inv, &agg);
  for (float& b : bias_agg) {
    b *= inv;
  }
  const std::string key = "l" + std::to_string(layer);
  optimizer_.StepSlice(key + ".w", agg.data(), state.value.data(), weight_floats);
  optimizer_.StepSlice(key + ".b", bias_agg.data(), state.value.data() + weight_floats,
                       state.rows);
  layer_push_count_[layer] = 0;

  auto reply_chunks = std::make_shared<std::vector<ChunkPayload>>();
  ChunkPayload chunk;
  chunk.offset = 0;
  chunk.data = state.value;
  reply_chunks->push_back(std::move(chunk));
  for (int w = 0; w < num_workers; ++w) {
    Message reply;
    reply.type = MessageType::kParamReply;
    reply.from = Address{id_, kServerPort};
    reply.to = Address{w, kSyncerPortBase + layer};
    reply.layer = layer;
    reply.chunks = reply_chunks;
    const Status status = bus_->Send(std::move(reply));
    CHECK(status.ok()) << status.ToString();
  }
}

}  // namespace poseidon

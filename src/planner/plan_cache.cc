#include "src/planner/plan_cache.h"

namespace poseidon {

std::shared_ptr<const CommPlan> PlanCache::GetOrPlan(const PlanRequest& request) {
  const PlanKey key = PlanRequestKey(request);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Search outside the lock: cold plans can take a while on deep models and
  // must not serialize concurrent trainers. A racing duplicate search yields
  // a bitwise-identical plan (PlanComm is pure), so last-write-wins is safe.
  auto plan = std::make_shared<const CommPlan>(PlanComm(request));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;
  }
  return it->second;
}

std::shared_ptr<const CommPlan> PlanCache::Lookup(const PlanRequest& request) const {
  const PlanKey key = PlanRequestKey(request);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  return it == plans_.end() ? nullptr : it->second;
}

int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();  // leaked: outlives all trainers
  return *cache;
}

}  // namespace poseidon

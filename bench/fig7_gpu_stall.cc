// Regenerates Figure 7: breakdown of GPU computation vs stall time when
// training Inception-V3, VGG19 and VGG19-22K on 8 nodes with the TensorFlow
// engine, for TF / TF+WFBP / Poseidon.
//
// Expected shape (paper): Poseidon keeps GPUs busy most of the time;
// TF wastes a large fraction waiting on parameter synchronization, with
// TF+WFBP in between (balanced KV sharding but no HybComm).
#include <cstdio>

#include "src/cluster/protocol_sim.h"
#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void Run(const BenchArgs& args) {
  const int nodes = args.FirstNodeOr(8);
  const double gbps = args.FirstGbpsOr(40.0);
  std::printf("Fig 7: GPU computation vs stall time, %d nodes, %.0f GbE (TF engine)\n\n",
              nodes, gbps);
  TextTable table({"model", "system", "compute %", "stall %"});
  for (const char* name : {"inception-v3", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    for (const SystemConfig& system : {TfNative(), TfPlusWfbp(), PoseidonSystem()}) {
      ClusterSpec cluster;
      cluster.num_nodes = nodes;
      cluster.nic_gbps = gbps;
      const SimResult result =
          RunProtocolSimulation(model, system, cluster, Engine::kTensorFlow);
      table.AddRow({model.name, system.name,
                    TextTable::Num(100.0 * result.gpu_busy_frac, 1),
                    TextTable::Num(100.0 * (1.0 - result.gpu_busy_frac), 1)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

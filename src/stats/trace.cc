#include "src/stats/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/common/logging.h"

namespace poseidon {
namespace {

/// One thread's event ring. Owned by the global collector (shared_ptr), so a
/// thread may exit while its events await export. Writes race only with
/// export/reset, which snapshot `size` after taking the registry mutex; the
/// writing thread never takes a lock.
struct ThreadRing {
  explicit ThreadRing(int32_t id, int64_t capacity)
      : tid(id), events(static_cast<size_t>(capacity)) {}

  const int32_t tid;
  std::vector<TraceEvent> events;
  std::atomic<int64_t> size{0};
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  int64_t ring_capacity = Tracer::kDefaultRingCapacity;
  /// Bumped by Reset so threads re-acquire a fresh ring lazily.
  std::atomic<int64_t> generation{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> epoch_ns{0};  // steady-clock origin, set at Enable
};

Collector& collector() {
  static Collector* c = new Collector;
  return *c;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The calling thread's ring for the current generation (registered on first
/// use; re-registered after Reset). The thread_local holds a shared_ptr so a
/// concurrent Reset can never free a ring out from under a recording thread —
/// at worst a racing event lands in a detached ring and is discarded.
ThreadRing* LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring;
  thread_local int64_t ring_generation = -1;
  Collector& c = collector();
  const int64_t gen = c.generation.load(std::memory_order_acquire);
  if (ring == nullptr || ring_generation != gen) {
    std::lock_guard<std::mutex> lock(c.mutex);
    ring = std::make_shared<ThreadRing>(static_cast<int32_t>(c.rings.size()),
                                        c.ring_capacity);
    c.rings.push_back(ring);
    ring_generation = gen;
  }
  return ring.get();
}

void Record(const char* name, const char* category, char phase, int64_t dur_ns,
            int64_t arg) {
  Collector& c = collector();
  ThreadRing* ring = LocalRing();
  const int64_t slot = ring->size.load(std::memory_order_relaxed);
  if (slot >= static_cast<int64_t>(ring->events.size())) {
    c.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& event = ring->events[static_cast<size_t>(slot)];
  event.name = name;
  event.category = category;
  event.phase = phase;
  event.ts_ns = SteadyNowNs() - c.epoch_ns.load(std::memory_order_relaxed);
  event.dur_ns = dur_ns;
  event.tid = ring->tid;
  event.arg = arg;
  ring->size.store(slot + 1, std::memory_order_release);
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

void Tracer::Enable(int64_t ring_capacity) {
  CHECK_GT(ring_capacity, 0);
  Collector& c = collector();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.ring_capacity = ring_capacity;
  }
  if (!enabled()) {
    c.epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  }
  enabled_flag().store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_flag().store(false, std::memory_order_release); }

void Tracer::Reset() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.rings.clear();
  c.dropped.store(0, std::memory_order_relaxed);
  c.epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  // Invalidate every thread's cached ring pointer (they re-register lazily).
  c.generation.fetch_add(1, std::memory_order_release);
}

int64_t Tracer::dropped() { return collector().dropped.load(std::memory_order_relaxed); }

int64_t Tracer::recorded() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  int64_t total = 0;
  for (const auto& ring : c.rings) {
    total += ring->size.load(std::memory_order_acquire);
  }
  return total;
}

int64_t Tracer::NowNs() {
  if (!enabled()) {
    return 0;
  }
  return SteadyNowNs() - collector().epoch_ns.load(std::memory_order_relaxed);
}

void Tracer::Instant(const char* name, const char* category, int64_t arg) {
  if (!enabled()) {
    return;
  }
  Record(name, category, 'i', 0, arg);
}

void Tracer::Begin(const char* name, const char* category, int64_t arg) {
  if (!enabled()) {
    return;
  }
  Record(name, category, 'B', 0, arg);
}

void Tracer::End(const char* name, const char* category) {
  if (!enabled()) {
    return;
  }
  Record(name, category, 'E', 0, TraceEvent::kNoArg);
}

void Tracer::Complete(const char* name, const char* category, int64_t start_ns,
                      int64_t dur_ns, int64_t arg) {
  if (!enabled()) {
    return;
  }
  Collector& c = collector();
  ThreadRing* ring = LocalRing();
  const int64_t slot = ring->size.load(std::memory_order_relaxed);
  if (slot >= static_cast<int64_t>(ring->events.size())) {
    c.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& event = ring->events[static_cast<size_t>(slot)];
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = ring->tid;
  event.arg = arg;
  ring->size.store(slot + 1, std::memory_order_release);
}

namespace {

void AppendEscaped(std::ostringstream* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char ch = *s;
    if (ch == '"' || ch == '\\') {
      *out << '\\';
    }
    *out << ch;
  }
}

void AppendEvent(std::ostringstream* out, const TraceEvent& event, bool* first) {
  *out << (*first ? "\n" : ",\n") << "    {\"name\": \"";
  *first = false;
  AppendEscaped(out, event.name);
  *out << "\", \"cat\": \"";
  AppendEscaped(out, event.category);
  *out << "\", \"ph\": \"" << event.phase << "\", \"pid\": 1, \"tid\": " << event.tid
       << ", \"ts\": ";
  // Chrome trace timestamps are microseconds; keep ns resolution as a
  // fractional part.
  char ts[40];
  std::snprintf(ts, sizeof(ts), "%lld.%03lld", static_cast<long long>(event.ts_ns / 1000),
                static_cast<long long>(event.ts_ns % 1000));
  *out << ts;
  if (event.phase == 'X') {
    std::snprintf(ts, sizeof(ts), "%lld.%03lld", static_cast<long long>(event.dur_ns / 1000),
                  static_cast<long long>(event.dur_ns % 1000));
    *out << ", \"dur\": " << ts;
  }
  if (event.phase == 'i') {
    *out << ", \"s\": \"t\"";  // instant scope: thread
  }
  if (event.arg != TraceEvent::kNoArg) {
    *out << ", \"args\": {\"v\": " << event.arg << "}";
  }
  *out << "}";
}

}  // namespace

std::string Tracer::ExportChromeJson() {
  Collector& c = collector();
  // Snapshot ring pointers + sizes under the mutex, then serialize without
  // blocking recorders (events below the snapshotted size are immutable).
  std::vector<std::pair<std::shared_ptr<ThreadRing>, int64_t>> snapshot;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    snapshot.reserve(c.rings.size());
    for (const auto& ring : c.rings) {
      snapshot.emplace_back(ring, ring->size.load(std::memory_order_acquire));
    }
  }
  std::ostringstream out;
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  for (const auto& [ring, size] : snapshot) {
    for (int64_t i = 0; i < size; ++i) {
      AppendEvent(&out, ring->events[static_cast<size_t>(i)], &first);
    }
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

Status Tracer::WriteChromeJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open " + path + " for writing");
  }
  const std::string json = ExportChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return UnavailableError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace poseidon

/// \file
/// Process plumbing for multi-process clusters: endpoint allocation, child
/// spawn/reap with timeouts, and the rendezvous/shutdown control protocol
/// that runs over SocketTransport control records.
///
/// The launcher model (tools/poseidon_launch.cc): process 0 is the
/// coordinator/controller; every other process hosts one or more bus nodes.
/// Lifecycle, all over control records on the ordinary data connections —
/// no second channel to keep consistent:
///
///   1. every process binds its listener, registers its mailboxes, dials
///      the full mesh, then sends kReady to process 0;
///   2. process 0 collects a kReady from every process (itself included)
///      and broadcasts kGo — only now may data flow, so no frame can ever
///      arrive before its destination mailbox exists;
///   3. each worker-hosting process sends kWorkerDone after its last
///      iteration (all replies received = its streams are quiescent);
///   4. process 0 collects kWorkerDone from every worker process and
///      broadcasts kShutdown; everyone tears down and exits 0.
///
/// Every wait has a deadline. A missed deadline (peer crashed, rendezvous
/// failed) returns DeadlineExceeded; the process exits nonzero, the launcher
/// notices the dead child, kills the rest of the cluster and propagates the
/// failure — CI sees a red job, never a hang (see docs/TRANSPORT.md).
#ifndef POSEIDON_SRC_TRANSPORT_CLUSTER_LAUNCHER_H_
#define POSEIDON_SRC_TRANSPORT_CLUSTER_LAUNCHER_H_

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/transport/socket_transport.h"

namespace poseidon {

// ---------------------------------------------------------------- processes

/// Asks the kernel for a free TCP port on 127.0.0.1 (bind :0, read the
/// assignment, close). The port is not reserved after return — the window
/// until the cluster binds it is the usual test-harness race, acceptable on
/// a CI box and re-rollable on failure.
StatusOr<int> PickFreeTcpPort();

/// A collision-resistant AF_UNIX socket path under `dir` (pid + tag + index
/// based). The path is unlinked if it already exists.
std::string MakeUnixSocketPath(const std::string& dir, const std::string& tag,
                               int index);

/// One spawned cluster member.
struct ChildProcess {
  pid_t pid = -1;
  /// The child's stderr is redirected here (append) so a failing cluster can
  /// dump every member's log.
  std::string stderr_path;
};

/// fork + execv of `binary` with `args` (argv[0] is set to `binary`),
/// stderr redirected to `stderr_path`. Returns immediately with the pid.
StatusOr<ChildProcess> SpawnChild(const std::string& binary,
                                  const std::vector<std::string>& args,
                                  const std::string& stderr_path);

/// Waits for `child` up to `timeout_ms`. Returns the exit code (128 + signal
/// for a signalled child); DeadlineExceeded if it is still running — the
/// caller decides whether to kill.
StatusOr<int> WaitChild(const ChildProcess& child, int timeout_ms);

/// SIGKILL + reap, for tearing down a cluster after one member failed.
void KillChild(const ChildProcess& child);

/// Last `max_bytes` of a file (stderr capture on failure); empty string when
/// unreadable.
std::string ReadFileTail(const std::string& path, int64_t max_bytes = 8192);

// ------------------------------------------------------------- rendezvous --

/// Control opcodes (SocketTransport kControl records).
enum ClusterOpcode : uint16_t {
  kOpReady = 1,       ///< member -> 0: mailboxes registered, mesh dialed
  kOpGo = 2,          ///< 0 -> all: every member ready; data may flow
  kOpWorkerDone = 3,  ///< worker process -> 0: last iteration complete
  kOpShutdown = 4,    ///< 0 -> all: tear down and exit
};

/// The rendezvous/shutdown state machine over one SocketTransport. Construct
/// BEFORE transport.Start() (it installs the control handler); then drive
/// the phases from the owning process's main thread. Thread-safe.
class ClusterControl {
 public:
  /// Installs this controller as `transport`'s control handler.
  ClusterControl(SocketTransport* transport, int num_processes);

  /// Phase 1+2. Members send kReady to process 0 and block for kGo;
  /// process 0 blocks for every kReady (its own included) and broadcasts
  /// kGo. Returns DeadlineExceeded if the cluster fails to assemble.
  Status Rendezvous(int timeout_ms);

  /// Phase 3, worker-hosting processes: announce completion to process 0.
  Status SignalWorkersDone();

  /// Phase 4, process 0: block until every process in `worker_processes`
  /// sent kWorkerDone, then broadcast kShutdown.
  Status AwaitWorkersAndBroadcastShutdown(const std::set<int>& worker_processes,
                                          int timeout_ms);

  /// Phase 4, members: block for kShutdown.
  Status AwaitShutdown(int timeout_ms);

 private:
  void OnControl(int src_process, uint16_t opcode);

  SocketTransport* const transport_;
  const int num_processes_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::set<int> ready_;
  std::set<int> done_;
  bool go_ = false;
  bool shutdown_ = false;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_CLUSTER_LAUNCHER_H_

// Extension experiment: low-precision + top-k sparse wire codecs on the PS
// path, chosen per layer by the byte-basis HybComm chooser
// (docs/COMPRESSION.md).
//
// Part 1 extends Table 1 with the compressed-PS byte rows and self-verifies
// every printed value against the closed-form per-direction costs (to 1e-6):
//   PS bytes = floats/2 * (PushBytesPerFloat + PullBytesPerFloat),
// then shows what BestSchemeExtendedCompressed picks for each layer class.
// Expected shape: big conv layers leave raw PS for a compressed PS row (the
// quantized round trip undercuts even ring allreduce); layers under the
// 64K-float gate stay raw.
//
// Part 2 is the bytes-vs-final-loss ablation on the threaded runtime: a real
// seeded training run per codec (and per top-k density), with the bus's
// measured egress bytes. Expected shape: every codec lands within noise of
// the raw final loss (error feedback), int8 cuts bytes ~2.4x end to end on
// this tiny model (frame headers dilute the asymptotic 2.66x), and sparser
// top-k trades bytes against convergence speed.
//
// Part 3 sweeps the protocol simulator over codec x bandwidth on VGG19:
// compression pays on starved fabrics and must never hurt where WFBP already
// hides the wire.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/models/comm_cost.h"
#include "src/models/zoo.h"
#include "src/stats/bench_record.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void CheckClose(double got, double want, const char* what) {
  const double scale = std::max(1.0, std::abs(want));
  CHECK_LT(std::abs(got - want) / scale, 1e-6)
      << what << ": got " << got << ", want " << want;
}

struct CostRow {
  const char* label;
  LayerSpec layer;
};

void CostTablePart(const std::vector<int>& workers, double density) {
  std::printf("Compressed-PS byte rows: per-worker wire MB per iteration,\n");
  std::printf("PS row split per direction (push codec + binary16 pull), top-k "
              "density %.2f.\n",
              density);
  std::printf("best = BestSchemeExtendedCompressed choice on the byte basis.\n\n");

  const std::vector<CostRow> rows = {
      {"fc 4096x4096", FcLayer("fc7", 4096, 4096)},
      {"fc 4096x25088", FcLayer("fc6", 4096, 25088)},
      {"conv 2.36M", ConvLayer("res5", 512, 512, 3, 7)},
      {"conv 36K", ConvLayer("conv2", 64, 64, 3, 56)},
  };
  const int64_t batch_k = 32;

  TextTable table({"layer", "P", "PS.raw", "PS.fp16", "PS.int8", "PS.topk", "best"});
  for (const CostRow& row : rows) {
    for (int p : workers) {
      if (p < 2) {
        continue;
      }
      CommCostQuery q;
      q.m = row.layer.type == LayerType::kFC ? row.layer.fc_m : row.layer.params;
      q.n = row.layer.type == LayerType::kFC ? row.layer.fc_n : 1;
      q.batch_k = batch_k;
      q.num_workers = p;
      q.num_servers = p;

      std::vector<std::string> cells = {row.label, std::to_string(p)};
      const double raw_floats =
          SchemeWireBytes(CommScheme::kPS, GradCompression::kNone, q, density) / 4.0;
      for (GradCompression codec :
           {GradCompression::kNone, GradCompression::kFp16, GradCompression::kInt8,
            GradCompression::kTopK}) {
        const double bytes = SchemeWireBytes(CommScheme::kPS, codec, q, density);
        // Self-verify against the closed form: the float row splits exactly
        // in half per direction, each half at its direction's byte cost.
        CheckClose(bytes,
                   raw_floats / 2.0 *
                       (PushBytesPerFloat(codec, density) + PullBytesPerFloat(codec)),
                   "per-direction byte row");
        cells.push_back(TextTable::Num(bytes / 1e6, 2));
      }
      const SchemeChoice best = BestSchemeExtendedCompressed(
          row.layer, batch_k, p, p, /*ps_shards=*/1, density);
      std::string best_label = CommSchemeName(best.scheme);
      if (best.compression != GradCompression::kNone) {
        best_label += std::string("+") + GradCompressionName(best.compression);
      }
      cells.push_back(best_label);
      table.AddRow(cells);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void RuntimeAblationPart(int iters, const std::vector<double>& densities,
                         BenchRecord* record) {
  std::printf("Threaded-runtime ablation: seeded 2-worker MLP, %d iterations,\n", iters);
  std::printf("bus egress bytes measured per iteration (framing included).\n\n");

  const CompressionAblationPoint raw =
      RunCompressionAblation(PsCompressionPolicy::kNone, /*topk_density=*/0.25, iters);
  const double raw_gain = raw.first_loss - raw.final_loss;
  record->Append("raw_bytes_per_iter", raw.wire_bytes_per_iter);
  record->Append("raw_final_loss", raw.final_loss);

  TextTable table({"codec", "density", "B/iter", "reduction", "final loss", "matched"});
  table.AddRow({"raw", "-", TextTable::Num(raw.wire_bytes_per_iter, 0), "1.00x",
                TextTable::Num(raw.final_loss, 4), "yes"});
  auto add_point = [&](const char* name, PsCompressionPolicy policy, double density) {
    const CompressionAblationPoint point =
        RunCompressionAblation(policy, density, iters);
    const double reduction = raw.wire_bytes_per_iter / point.wire_bytes_per_iter;
    const bool matched = raw.first_loss - point.final_loss >= 0.9 * raw_gain;
    record->Append(std::string(name) + "_bytes_per_iter", point.wire_bytes_per_iter);
    record->Append(std::string(name) + "_final_loss", point.final_loss);
    record->Append(std::string(name) + "_reduction", reduction);
    char reduction_label[32];
    std::snprintf(reduction_label, sizeof(reduction_label), "%.2fx", reduction);
    table.AddRow({name, policy == PsCompressionPolicy::kTopK
                            ? TextTable::Num(density, 2)
                            : std::string("-"),
                  TextTable::Num(point.wire_bytes_per_iter, 0), reduction_label,
                  TextTable::Num(point.final_loss, 4), matched ? "yes" : "NO"});
  };
  add_point("fp16", PsCompressionPolicy::kFp16, 0.25);
  add_point("int8", PsCompressionPolicy::kInt8, 0.25);
  for (double density : densities) {
    char name[32];
    std::snprintf(name, sizeof(name), "topk%02d",
                  static_cast<int>(std::lround(density * 100)));
    add_point(name, PsCompressionPolicy::kTopK, density);
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SimSweepPart(const BenchArgs& args, const std::vector<int>& nodes,
                  const std::vector<double>& bandwidths) {
  std::vector<SystemConfig> systems = {
      CaffePlusWfbp(),
      CompressedPsSystem(GradCompression::kFp16),
      CompressedPsSystem(GradCompression::kInt8),
      CompressedPsSystem(GradCompression::kTopK, /*topk_density=*/0.01),
      CompressedPsSystem(GradCompression::kNone, /*topk_density=*/0.01,
                         /*auto_per_layer=*/true),
  };
  const ModelSpec model = ModelByName("vgg19").value();
  for (double gbps : bandwidths) {
    // --plan=auto|fixed: the planner's joint scheme+codec choice replaces
    // the fixed per-codec system list above.
    const auto results =
        RunPlannedScalingSweep(args, model, systems, nodes, gbps, Engine::kCaffe);
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Compressed-PS extension: %s @ %.0f GbE (Caffe engine)",
                  model.name.c_str(), gbps);
    std::printf("%s\n", FormatSpeedupTable(title, results).c_str());

    TextTable traffic({"system", "nodes", "tx Gb/iter/node"});
    for (const SweepResult& result : results) {
      if (result.nodes != nodes.back()) {
        continue;
      }
      double total = 0.0;
      for (double gbits : result.sim.tx_gbits_per_iter) {
        total += gbits;
      }
      traffic.AddRow({result.system, std::to_string(result.nodes),
                      TextTable::Num(total / result.nodes, 3)});
    }
    std::printf("%s\n", traffic.ToString().c_str());
  }
  const std::string plan_summary =
      FormatPlanSummary(args, model, nodes.back(), bandwidths.front());
  if (!plan_summary.empty()) {
    std::printf("%s\n", plan_summary.c_str());
  }
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  const std::vector<int> nodes = args.NodesOr({4, 8, 16});
  const std::vector<double> bandwidths = args.GbpsOr({10.0, 40.0});
  const int iters = args.ItersOr(/*normal=*/24, /*fast_iters=*/8);
  const std::vector<double> densities =
      args.fast ? std::vector<double>{0.25} : std::vector<double>{0.05, 0.25, 0.5};
  poseidon::InitBenchTelemetry(args);
  poseidon::BenchRecord record("ext_compression");
  record.SetMeta("iters", static_cast<double>(iters));
  poseidon::CostTablePart(nodes, /*density=*/0.05);
  poseidon::RuntimeAblationPart(iters, densities, &record);
  poseidon::SimSweepPart(args, nodes, bandwidths);
  poseidon::FinishBenchTelemetry(args, &record);
  return 0;
}

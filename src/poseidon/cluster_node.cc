#include "src/poseidon/cluster_node.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/common/logging.h"
#include "src/poseidon/checkpoint.h"
#include "src/poseidon/workloads.h"

namespace poseidon {

ClusterNode::ClusterNode(ClusterNodeConfig config) : config_(std::move(config)) {
  const TrainerOptions& t = config_.trainer;
  CHECK_GT(t.num_workers, 0);
  CHECK_GT(t.num_servers, 0);
  CHECK_GE(t.shards_per_server, 1)
      << "multi-process clusters need an explicit shard count";
  CHECK_GE(t.server_node_base, 0);
  CHECK(!t.enable_faults && !t.fault_plan.any())
      << "bus-level fault injection is in-process only; use the transport's "
         "loss shim (SocketTransportOptions::shim) for socket chaos";
  CHECK(!t.crash.active() && !t.failure_detection.enabled)
      << "crash/recovery plans are in-process-trainer features";
  CHECK_GT(config_.iterations, 0);
  CHECK_EQ(config_.process, config_.transport.self);
}

ClusterNode::~ClusterNode() = default;

Status ClusterNode::Run() {
  const TrainerOptions& t = config_.trainer;
  const int num_nodes =
      std::max(t.num_workers, t.server_node_base + t.num_servers);
  if (static_cast<int>(config_.transport.node_owner.size()) != num_nodes) {
    return InvalidArgumentError("node_owner must map all " +
                                std::to_string(num_nodes) + " bus nodes");
  }

  // Every process builds the same coordinator from the same shape; replicas
  // and the server master copies come from one deterministic factory.
  init_net_ = workloads::TinyMlpFactory(config_.hidden_layers)();
  ClusterInfo cluster;
  cluster.num_workers = t.num_workers;
  cluster.num_servers = t.num_servers;
  cluster.shards_per_server = t.shards_per_server;
  cluster.server_node_base = t.server_node_base;
  cluster.staleness = t.staleness;
  cluster.batch_per_worker = t.batch_per_worker;
  cluster.kv_pair_bytes = t.kv_pair_bytes;
  coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
  schemes_ = ResolveSchemes(*coordinator_, t.fc_policy);

  bus_ = std::make_unique<MessageBus>(num_nodes);
  if (t.batch_egress) {
    bus_->EnableBatching(t.batch_options);
  }
  transport_ = std::make_shared<SocketTransport>(config_.transport);
  // Handler installation must precede Start(): control records may arrive
  // the moment the listener is up.
  control_ = std::make_unique<ClusterControl>(
      transport_.get(), static_cast<int>(config_.transport.processes.size()));
  bus_->AttachTransport(transport_);
  Status status = transport_->Start(bus_.get());
  if (!status.ok()) return status;

  // This process's slice of the node space.
  for (int w = 0; w < t.num_workers; ++w) {
    if (transport_->IsLocal(w)) local_workers_.push_back(w);
  }
  for (int s = 0; s < t.num_servers; ++s) {
    if (transport_->IsLocal(cluster.ServerNode(s))) local_servers_.push_back(s);
  }

  // Register every local mailbox BEFORE announcing readiness: no data frame
  // flows until every process passed the rendezvous barrier, so no frame can
  // beat its destination mailbox.
  for (int s : local_servers_) {
    servers_.push_back(std::make_unique<KvServer>(
        s, /*first_iter=*/0, *coordinator_, schemes_, *init_net_, bus_.get(), t.sgd));
  }
  for (int w : local_workers_) {
    worker_nets_.push_back(workloads::TinyMlpFactory(config_.hidden_layers)());
    clients_.push_back(std::make_unique<ClientLibrary>(
        w, *coordinator_, schemes_, worker_nets_.back().get(), bus_.get(), t.sgd,
        t.syncer_threads));
  }
  for (auto& server : servers_) {
    server->Start();
  }

  status = transport_->ConnectAll();
  if (!status.ok()) return status;
  status = control_->Rendezvous(config_.rendezvous_timeout_ms);
  if (!status.ok()) return status;
  LOG(Info) << "process " << config_.process << " joined: "
            << local_workers_.size() << " worker(s), " << local_servers_.size()
            << " server(s) over " << transport_->name();

  losses_.assign(local_workers_.size(),
                 std::vector<double>(static_cast<size_t>(config_.iterations), 0.0));
  accuracies_ = losses_;

  std::vector<std::thread> threads;
  std::vector<Status> worker_status(local_workers_.size());
  for (size_t i = 0; i < local_workers_.size(); ++i) {
    threads.emplace_back([this, i, &worker_status] {
      worker_status[i] = RunWorker(static_cast<int>(i));
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const Status& ws : worker_status) {
    if (!ws.ok()) return ws;
  }
  // Drain this process's egress (bus batches + socket queues) before
  // declaring completion, so process 0's shutdown decision never races
  // bytes still in our send path.
  bus_->FlushEgress();
  if (!local_workers_.empty()) {
    status = control_->SignalWorkersDone();
    if (!status.ok()) return status;
  }

  if (config_.process == 0) {
    std::set<int> worker_processes;
    for (int w = 0; w < t.num_workers; ++w) {
      worker_processes.insert(config_.transport.node_owner[static_cast<size_t>(w)]);
    }
    status = control_->AwaitWorkersAndBroadcastShutdown(worker_processes,
                                                        config_.shutdown_timeout_ms);
    if (!status.ok()) return status;
  }
  status = control_->AwaitShutdown(config_.shutdown_timeout_ms);
  if (!status.ok()) return status;

  // Same teardown order as PoseidonTrainer::Shutdown, restricted to the
  // local slice: poison each local shard, join, close mailboxes, stop I/O.
  for (size_t i = 0; i < servers_.size(); ++i) {
    for (int shard = 0; shard < servers_[i]->num_shards(); ++shard) {
      Message shutdown;
      shutdown.type = MessageType::kShutdown;
      shutdown.from = Address{0, kSyncerPortBase};
      shutdown.to = coordinator_->cluster().ShardAddress(local_servers_[i], shard);
      const Status sent = bus_->Send(std::move(shutdown));
      CHECK(sent.ok()) << sent.ToString();
    }
  }
  for (auto& server : servers_) {
    server->Join();
  }
  bus_->CloseAll();
  shim_counters_ = transport_->ShimCounters();
  wire_counters_ = bus_->WireCounters();
  transport_->Stop();
  if (config_.transport.shim.any()) {
    LOG(Info) << "process " << config_.process << " shim: "
              << FormatFaultCounters(shim_counters_);
  }
  LOG(Info) << "process " << config_.process << " clean exit; "
            << "tx records=" << transport_->records_sent()
            << " rx records=" << transport_->records_received();
  return Status::Ok();
}

Status ClusterNode::RunWorker(int local) {
  // Bitwise-identical arithmetic to PoseidonTrainer::RunWorkerLoop: same
  // batch schedule, same forward/backward order, same sync scheduling.
  const TrainerOptions& t = config_.trainer;
  const int w = local_workers_[static_cast<size_t>(local)];
  const SyntheticDataset dataset = workloads::TinyDataset();
  Network& net = *worker_nets_[static_cast<size_t>(local)];
  ClientLibrary& client = *clients_[static_cast<size_t>(local)];
  for (int64_t iter = 0; iter < config_.iterations; ++iter) {
    const Batch batch =
        dataset.TrainBatch(iter, t.batch_per_worker, w, t.num_workers);
    const LossResult result = net.Forward(batch.images, batch.labels);
    losses_[static_cast<size_t>(local)][static_cast<size_t>(iter)] = result.loss;
    accuracies_[static_cast<size_t>(local)][static_cast<size_t>(iter)] =
        result.accuracy;
    client.StartIteration(iter);
    for (int l = net.num_layers() - 1; l >= 0; --l) {
      net.BackwardThrough(l);
      client.ScheduleSync(l);  // wait-free backpropagation
    }
    client.WaitAll();  // BSP barrier: every layer synchronized
  }
  return WriteWorkerResults(local);
}

Status ClusterNode::WriteWorkerResults(int local) {
  if (config_.out_dir.empty()) {
    return Status::Ok();
  }
  const int w = local_workers_[static_cast<size_t>(local)];
  const std::string base = config_.out_dir + "/worker_" + std::to_string(w);
  FILE* f = std::fopen((base + "_losses.txt").c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot write " + base + "_losses.txt");
  }
  for (int64_t i = 0; i < config_.iterations; ++i) {
    // %a round-trips doubles exactly — the trajectory oracle compares bits.
    std::fprintf(f, "%lld %a %a\n", static_cast<long long>(i),
                 losses_[static_cast<size_t>(local)][static_cast<size_t>(i)],
                 accuracies_[static_cast<size_t>(local)][static_cast<size_t>(i)]);
  }
  std::fclose(f);
  return SaveCheckpoint(*worker_nets_[static_cast<size_t>(local)],
                        config_.iterations, base + ".ckpt");
}

}  // namespace poseidon

// Fixed-size worker pool mirroring the "CPU thread pool" the Poseidon client
// library manages for syncer jobs (paper §4.1). Tasks are arbitrary
// std::function<void()>; Wait() blocks until all scheduled tasks completed,
// which is how the trainer implements the end-of-iteration BSP barrier.
#ifndef POSEIDON_SRC_COMMON_THREAD_POOL_H_
#define POSEIDON_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/blocking_queue.h"

namespace poseidon {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. CHECK-fails after Shutdown().
  void Schedule(std::function<void()> task);

  // Blocks until every task scheduled so far has finished executing.
  void Wait();

  // Drains outstanding tasks and joins the workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable idle_cv_;
  int pending_ = 0;  // scheduled but not yet finished
  bool shutdown_ = false;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_THREAD_POOL_H_

/// \file
/// In-process message bus with per-endpoint mailboxes, optional egress rate
/// limiting, and an optional per-destination egress batcher.
///
/// This stands in for the paper's Ethernet + ZMQ layer: every endpoint
/// (server service loop, worker syncer mailbox) registers a blocking queue;
/// Send() routes by address. A token-bucket rate limiter can be attached per
/// node to emulate a bounded-egress NIC in wall-clock time (used by examples;
/// the quantitative bandwidth experiments use the virtual-time fabric in
/// src/sim instead). Traffic is accounted per node for the load-balance
/// experiments.
///
/// Batching (EnableBatching): outgoing messages from one node to the same
/// destination node and iteration coalesce into one framed wire message, so
/// a many-layer model's per-layer pushes to a shard endpoint cost one frame
/// instead of one per layer. Each node owns an egress queue and a flusher
/// thread; a batch is cut when it reaches the configured message/byte
/// thresholds, when the iteration changes, on shutdown messages, or when the
/// flush interval elapses — so a blocked or throttled destination can only
/// ever stall its own node's egress, never another node's (see
/// docs/WIRE_FORMAT.md).
///
/// Fault injection (EnableFaultInjection): a seeded FaultInjector sits on
/// the remote delivery path and drops (with link-layer retransmit),
/// duplicates, delays, or partitions traffic; every remote data message is
/// stamped with a per-stream sequence number and passes through a
/// receiver-side ReorderBuffer that deduplicates and restores per-stream
/// FIFO order before the consumer sees it. Traffic counters keep reporting
/// the fault-free logical traffic; the injected weather is accounted
/// separately in FaultCounters (see docs/FAULT_TOLERANCE.md).
#ifndef POSEIDON_SRC_TRANSPORT_BUS_H_
#define POSEIDON_SRC_TRANSPORT_BUS_H_

#include <atomic>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/blocking_queue.h"
#include "src/common/status.h"
#include "src/stats/metrics.h"
#include "src/transport/fault_injector.h"
#include "src/transport/message.h"
#include "src/transport/rate_limiter.h"
#include "src/transport/sequencer.h"
#include "src/transport/transport.h"

namespace poseidon {

/// Observed traffic on one directed (src node, dst node) link since
/// EnableLinkStats: wire bytes, wire messages (a batched frame counts once),
/// and the distribution of bus-accept-to-mailbox-push delivery latency.
struct LinkStat {
  int src = 0;
  int dst = 0;
  int64_t bytes = 0;
  int64_t messages = 0;
  Histogram::Snapshot delivery_latency_ns;
  /// bytes * 8 over the observation window — the live per-link bandwidth
  /// estimate the CommPlanner consumes.
  double observed_gbps = 0.0;
};

/// Point-in-time per-link traffic matrix (links with no traffic omitted).
struct ObservedLinkStats {
  double window_s = 0.0;  ///< seconds since EnableLinkStats
  std::vector<LinkStat> links;

  /// The stat for (src, dst), or nullptr if that link carried no traffic.
  const LinkStat* Find(int src, int dst) const {
    for (const LinkStat& link : links) {
      if (link.src == src && link.dst == dst) {
        return &link;
      }
    }
    return nullptr;
  }
};

/// Egress batching knobs. Defaults favour throughput on many-layer models
/// while keeping the added latency bounded by the flush interval.
struct EgressBatchOptions {
  /// A batch is cut when it holds this many messages.
  int max_batch_messages = 16;
  /// ... or this many payload bytes.
  int64_t max_batch_bytes = 4 << 20;
  /// ... or when it has aged this long without filling (progress guarantee:
  /// a push waiting on this batch can never deadlock its receiver).
  int flush_interval_us = 200;
};

class MessageBus {
 public:
  using Mailbox = BlockingQueue<Message>;

  explicit MessageBus(int num_nodes);
  ~MessageBus();

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Creates (or returns) the mailbox for `address`. Thread-safe.
  std::shared_ptr<Mailbox> Register(const Address& address);

  /// Routes `message` to its destination mailbox. Returns NotFound if the
  /// destination was never registered. Applies the sender's rate limit, if
  /// any, based on the message's wire size; the limiter wait never holds the
  /// bus lock, so one node's throttled egress cannot stall another node's
  /// sends. With batching enabled, remote messages are queued on the
  /// sender's egress batcher instead of being delivered inline.
  Status Send(Message message);

  /// Attaches the frame carrier for destinations outside this process (call
  /// at most once, before traffic flows; mutually exclusive with
  /// EnableFaultInjection — cross-process chaos lives in the socket
  /// transport's lossy shim instead). Once attached, Send() serializes
  /// messages for non-local nodes into docs/WIRE_FORMAT.md frames and hands
  /// them to the transport; every remote data message is stamped from a
  /// per-stream sequencer so the receiving bus can deduplicate and restore
  /// FIFO order whatever the wire does (see DeliverWire).
  void AttachTransport(std::shared_ptr<Transport> transport);
  /// The attached backend; null means the historical in-process-only bus.
  Transport* transport() const { return transport_.get(); }

  /// Ingress from the transport: decodes one wire frame (message or batch)
  /// and delivers its logical messages to local mailboxes. Sequenced
  /// messages pass through the wire reorder buffer (dedup + in-order
  /// release); `send_ns` is restamped here, on the receiver's clock, so
  /// delivery-latency stats never compare steady clocks of two processes.
  /// Returns InvalidArgument/OutOfRange on malformed bytes. Thread-safe.
  Status DeliverWire(const uint8_t* data, int64_t size);

  /// Dedup/reorder counters of the wire ingress path (all zero until a
  /// transport is attached and weather happens).
  FaultCountersSnapshot WireCounters() const;

  /// Turns on per-destination egress batching (idempotent is not supported:
  /// call at most once, before traffic flows). Spawns one flusher thread per
  /// node.
  void EnableBatching(const EgressBatchOptions& options = {});
  bool batching_enabled() const { return batching_.load(std::memory_order_acquire); }

  /// Blocks until every pending batch has been delivered (tests and
  /// iteration barriers; no-op without batching).
  void FlushEgress();

  /// Turns on the seeded fault-injection fabric (call at most once, before
  /// traffic flows). Spawns the delivery-pump thread that serves delayed,
  /// duplicated, retransmitted, and partition-held messages.
  void EnableFaultInjection(const FaultPlan& plan);
  bool faults_enabled() const { return injector_ != nullptr; }
  /// The injector (partition control, counters); null when disabled.
  FaultInjector* fault_injector() { return injector_.get(); }

  /// Blocks until no delayed/retransmit deliveries are pending. Messages
  /// parked behind an active partition are excluded (they flow on heal).
  /// No-op without fault injection.
  void FlushFaults();

  /// Cuts both directions between `a` and `b` (requires fault injection).
  void Partition(int a, int b);
  /// Restores all cut links and immediately replays parked traffic.
  void HealPartitions();
  /// Test hook: blocks until at least `n` messages (cumulative) have been
  /// parked behind an active partition — a condition wait on the pump, so a
  /// heal can be scheduled after the cut provably touched live traffic
  /// instead of after a wall-clock guess. False on timeout or when fault
  /// injection is off.
  bool AwaitPartitionHolds(int64_t n, int timeout_ms);

  /// Simulates the death of a node's endpoints: closes and unregisters every
  /// mailbox at `node` with port in [min_port, max_port), so blocked
  /// receivers wake (Pop returns nullopt) and a restarted process can
  /// Register fresh mailboxes at the same addresses. In-flight messages to
  /// the closed endpoints are dropped and counted
  /// (FaultCounters::dropped_replies). Callers bound the range so endpoints
  /// owned by *other* processes colocated on the node (the coordinator's
  /// monitor mailbox at kMonitorPort) survive a worker-process death.
  void CloseEndpoints(int node, int min_port, int max_port = INT_MAX);

  /// Attaches a wall-clock egress limit (bytes/s) to `node`; 0 removes it.
  void SetEgressLimit(int node, double bytes_per_sec);
  /// The node's current limiter (tests synchronize on its waiter count);
  /// null when no limit is set.
  std::shared_ptr<RateLimiter> egress_limiter(int node) const;

  /// Turns on per-(src,dst) link accounting: bytes, wire messages, and
  /// delivery-latency histograms per directed node pair. Remote messages are
  /// stamped at Send() and the latency recorded at the final mailbox push,
  /// so batching queue time and injected fault delays show up in the
  /// distribution. Idempotent; cheap enough to leave on (a few relaxed adds
  /// per wire message).
  void EnableLinkStats();
  bool link_stats_enabled() const {
    return link_stats_enabled_.load(std::memory_order_acquire);
  }
  /// Snapshot of every link that carried traffic since EnableLinkStats.
  /// Lifetime-cumulative: bytes/messages/observed_gbps average over the whole
  /// time stats have been on.
  ObservedLinkStats SnapshotLinkStats() const;

  /// Snapshot of traffic since the *previous* SnapshotLinkStatsDelta call
  /// (since EnableLinkStats on the first call): `window_s`, per-link bytes,
  /// messages and `observed_gbps` all cover just that window, which is what
  /// the bandwidth-feedback Replanner wants — the current window's rate, not
  /// a since-boot average that old traffic dominates. Delivery-latency
  /// histograms remain cumulative (bucket deltas are not meaningful per
  /// window). Callers taking deltas should use one sampling loop: concurrent
  /// delta takers would split the traffic between them.
  ObservedLinkStats SnapshotLinkStatsDelta();

  /// Cumulative egress bytes per node (approximate wire sizes, framing
  /// included; batch frames counted once).
  std::vector<int64_t> TxBytes() const;
  int64_t TxBytes(int node) const;
  /// Cumulative wire messages per node: a delivered batch counts as one.
  std::vector<int64_t> TxMessages() const;
  int64_t TxMessages(int node) const;
  /// Cumulative logical (sub-)messages per node, batched or not.
  std::vector<int64_t> TxEntries() const;
  int64_t TxEntries(int node) const;
  void ResetTraffic();

  /// Closes every mailbox (wakes all blocked receivers).
  void CloseAll();

  int num_nodes() const { return static_cast<int>(tx_bytes_.size()); }

 private:
  /// One batch under assembly or awaiting delivery: same destination node,
  /// same iteration, entries in send order.
  struct Batch {
    int dst_node = 0;
    int64_t iter = -1;
    int64_t payload_bytes = 0;
    std::chrono::steady_clock::time_point opened;
    std::vector<std::pair<std::shared_ptr<Mailbox>, Message>> entries;
  };

  /// Per-node egress queue + flusher thread (only with batching enabled).
  struct NodeEgress {
    std::mutex mutex;
    std::condition_variable cv;       // wakes the flusher
    std::condition_variable idle_cv;  // signals FlushEgress waiters
    std::vector<Batch> open;          // at most one per destination node
    std::deque<Batch> ready;
    int delivering = 0;
    bool flush_requested = false;
    bool stop = false;
    std::thread flusher;
  };

  /// One message waiting on the fault pump: a delayed or duplicated
  /// delivery, a scheduled retransmission, or partition-parked traffic.
  struct TimedDelivery {
    std::chrono::steady_clock::time_point due;
    uint64_t order = 0;  // FIFO tie-break for equal due times
    std::shared_ptr<Mailbox> mailbox;
    Message message;
    int attempt = 0;
    /// True: just commit at `due` (the fault dice were already rolled);
    /// false: this is a fresh transmission attempt (retransmit) that rolls
    /// its own dice.
    bool commit_only = false;
  };
  struct TimedDeliveryLater {
    bool operator()(const TimedDelivery& a, const TimedDelivery& b) const {
      return a.due != b.due ? a.due > b.due : a.order > b.order;
    }
  };

  /// One directed link's accumulators (allocated n*n by EnableLinkStats).
  struct LinkCell {
    LinkCell() : latency_ns(LatencyBucketsNs()) {}
    std::atomic<int64_t> bytes{0};
    std::atomic<int64_t> messages{0};
    Histogram latency_ns;
  };

  /// Accounts `bytes` of wire traffic on src -> dst (no-op when disabled).
  void RecordLinkTx(int src, int dst, int64_t bytes);
  /// Records bus-accept-to-push latency for a stamped remote message.
  void RecordLinkDelivery(const Message& message);

  /// Copies the routing state for `message` under the bus lock.
  Status Route(const Message& message, std::shared_ptr<Mailbox>* mailbox,
               std::shared_ptr<RateLimiter>* limiter) const;
  /// True when `node`'s mailboxes are hosted by another process.
  bool IsWireRemote(int node) const {
    return transport_ != nullptr && !transport_->IsLocal(node);
  }
  /// Serializes one unbatched message and ships it via the transport
  /// (accounting + rate limit identical to SendDirect's remote path).
  Status SendViaTransport(Message message, std::shared_ptr<RateLimiter> limiter);
  /// Inline delivery (no batching, or local traffic).
  Status SendDirect(Message message, std::shared_ptr<Mailbox> mailbox,
                    std::shared_ptr<RateLimiter> limiter);
  /// Delivers one cut batch: one limiter acquire and one wire frame, then
  /// the entries in order. Runs on the owning node's flusher thread.
  void DeliverBatch(int src, Batch batch);
  void FlusherLoop(int node);

  /// Remote delivery behind the injector: parks partitioned traffic, rolls
  /// the fault dice for this transmission attempt, and either schedules the
  /// message on the pump or commits it now.
  void InjectOrCommit(std::shared_ptr<Mailbox> mailbox, Message message, int attempt);
  /// Final delivery: runs the reorder buffer and pushes the released run.
  void Commit(const std::shared_ptr<Mailbox>& mailbox, Message message);
  void SchedulePumped(TimedDelivery delivery);
  void PumpLoop();

  mutable std::mutex mutex_;
  std::unordered_map<Address, std::shared_ptr<Mailbox>, AddressHash> mailboxes_;
  std::vector<std::shared_ptr<RateLimiter>> limiters_;  // per node, may be null
  std::vector<std::atomic<int64_t>> tx_bytes_;
  std::vector<std::atomic<int64_t>> tx_messages_;
  std::vector<std::atomic<int64_t>> tx_entries_;

  std::atomic<bool> batching_{false};
  EgressBatchOptions batch_options_;
  std::vector<std::unique_ptr<NodeEgress>> egress_;

  // Link accounting (set once by EnableLinkStats, then immutable pointers).
  std::atomic<bool> link_stats_enabled_{false};
  std::vector<std::unique_ptr<LinkCell>> link_cells_;  // n*n, row-major by src
  std::chrono::steady_clock::time_point link_stats_since_;

  // Delta-snapshot cursor: last-seen cumulative counters per link cell plus
  // the previous delta timestamp, guarded by its own mutex so delta takers
  // never contend with the hot RecordLinkTx path.
  mutable std::mutex link_delta_mutex_;
  std::vector<int64_t> link_delta_bytes_seen_;
  std::vector<int64_t> link_delta_messages_seen_;
  std::chrono::steady_clock::time_point link_delta_since_;

  // Frame carrier for cross-process destinations (set once by
  // AttachTransport, then immutable). The wire sequencer stamps every
  // outbound remote data message; the wire reorder buffer restores
  // exactly-once FIFO per stream on ingress (real sockets — and the lossy
  // shim especially — can duplicate and reorder records).
  std::shared_ptr<Transport> transport_;
  std::unique_ptr<StreamSequencer> wire_sequencer_;
  std::unique_ptr<FaultCounters> wire_counters_;
  std::unique_ptr<ReorderBuffer> wire_reorder_;

  // Fault fabric (set once by EnableFaultInjection, then immutable pointers).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<StreamSequencer> sequencer_;
  std::unique_ptr<ReorderBuffer> reorder_;
  std::mutex pump_mutex_;
  std::condition_variable pump_cv_;   // wakes the pump
  std::condition_variable pump_idle_cv_;  // signals FlushFaults waiters
  std::priority_queue<TimedDelivery, std::vector<TimedDelivery>, TimedDeliveryLater>
      pump_queue_;
  std::vector<TimedDelivery> partition_held_;
  uint64_t pump_order_ = 0;
  int pump_busy_ = 0;
  bool pump_stop_ = false;
  std::thread pump_thread_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_BUS_H_

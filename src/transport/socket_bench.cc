#include "src/transport/socket_bench.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/stats/bench_record.h"
#include "src/transport/bus.h"
#include "src/transport/cluster_launcher.h"
#include "src/transport/message.h"
#include "src/transport/payload.h"
#include "src/transport/socket_transport.h"

namespace poseidon {
namespace {

// Runs its action on every scope exit — early error returns included — so
// the bench can never leave the /tmp socket directory behind.
class ScopeExit {
 public:
  explicit ScopeExit(std::function<void()> action) : action_(std::move(action)) {}
  ~ScopeExit() { action_(); }
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  std::function<void()> action_;
};

}  // namespace

StatusOr<SocketBandwidthResult> MeasureSocketBandwidth(
    const SocketBandwidthOptions& options) {
  if (options.payload_floats <= 0 || options.frames <= 0) {
    return InvalidArgumentError("socket bench needs positive floats and frames");
  }

  std::vector<SocketEndpoint> endpoints(2);
  std::string dir;
  if (options.unix_sockets) {
    char tmpl[] = "/tmp/poseidon_sockbench_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      return InternalError("mkdtemp failed for unix socket dir");
    }
    dir = tmpl;
    for (int p = 0; p < 2; ++p) {
      endpoints[static_cast<size_t>(p)].unix_path =
          MakeUnixSocketPath(dir, "bench", p);
    }
  } else {
    for (int p = 0; p < 2; ++p) {
      StatusOr<int> port = PickFreeTcpPort();
      if (!port.ok()) {
        return port.status();
      }
      endpoints[static_cast<size_t>(p)].port = *port;
    }
  }

  std::unique_ptr<MessageBus> bus[2];
  std::shared_ptr<SocketTransport> transport[2];
  ScopeExit teardown([&] {
    for (int p = 0; p < 2; ++p) {
      if (bus[p] != nullptr) {
        bus[p]->CloseAll();
      }
      if (transport[p] != nullptr) {
        transport[p]->Stop();
      }
    }
    if (!dir.empty()) {
      for (const SocketEndpoint& e : endpoints) {
        std::remove(e.unix_path.c_str());
      }
      rmdir(dir.c_str());
    }
  });

  for (int p = 0; p < 2; ++p) {
    SocketTransportOptions topts;
    topts.self = p;
    topts.processes = endpoints;
    topts.node_owner = {0, 1};
    bus[p] = std::make_unique<MessageBus>(2);
    transport[p] = std::make_shared<SocketTransport>(topts);
    bus[p]->AttachTransport(transport[p]);
    const Status started = transport[p]->Start(bus[p].get());
    if (!started.ok()) {
      return started;
    }
  }
  for (int p = 0; p < 2; ++p) {
    const Status connected = transport[p]->ConnectAll();
    if (!connected.ok()) {
      return connected;
    }
  }

  auto sink = bus[1]->Register(Address{1, kServerPort});
  // One shared slab: the send path is zero-copy, so the probe measures the
  // socket, not an allocator.
  Payload slab = Payload::Allocate(options.payload_floats);

  auto send_frame = [&](int64_t iter) -> Status {
    Message m;
    m.type = MessageType::kGradPush;
    m.from = Address{0, kSyncerPortBase};
    m.to = Address{1, kServerPort};
    m.layer = 0;
    m.worker = 0;
    m.iter = iter;
    m.codec = WireCodec::kRawFloat;
    m.chunks.push_back({0, slab.View()});
    return bus[0]->Send(std::move(m));
  };

  for (int i = 0; i < options.warmup_frames; ++i) {
    const Status sent = send_frame(i);
    if (!sent.ok()) {
      return sent;
    }
  }
  for (int i = 0; i < options.warmup_frames; ++i) {
    if (!sink->Pop().has_value()) {
      return InternalError("socket bench warmup frame lost");
    }
  }

  const int64_t wire_before = transport[0]->bytes_sent();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < options.frames; ++i) {
    const Status sent = send_frame(options.warmup_frames + i);
    if (!sent.ok()) {
      return sent;
    }
  }
  for (int i = 0; i < options.frames; ++i) {
    if (!sink->Pop().has_value()) {
      return InternalError("socket bench timed frame lost");
    }
  }
  const auto end = std::chrono::steady_clock::now();

  SocketBandwidthResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  result.payload_bytes =
      static_cast<int64_t>(options.frames) * options.payload_floats * 4;
  // Every timed frame was popped, so every timed record was written; the
  // sender counter delta is the stream cost including headers.
  result.wire_bytes = transport[0]->bytes_sent() - wire_before;
  if (result.seconds > 0.0) {
    result.payload_gbps =
        static_cast<double>(result.payload_bytes) * 8.0 / result.seconds / 1e9;
    result.wire_gbps =
        static_cast<double>(result.wire_bytes) * 8.0 / result.seconds / 1e9;
  }
  return result;
}

double MeasureTransportForBench(const BenchArgs& args, BenchRecord* record) {
  if (!args.SocketTransportRequested()) {
    return 0.0;
  }
  SocketBandwidthOptions options;
  options.unix_sockets = args.UnixTransport();
  const StatusOr<SocketBandwidthResult> measured = MeasureSocketBandwidth(options);
  if (!measured.ok()) {
    std::fprintf(stderr, "socket bandwidth probe failed: %s\n",
                 measured.status().ToString().c_str());
    return 0.0;
  }
  std::printf(
      "Measured loopback %s transport: %.2f Gb/s payload, %.2f Gb/s on the "
      "stream (%lld bytes in %.3f s); sweeping it as an extra bandwidth.\n\n",
      args.transport.c_str(), measured->payload_gbps, measured->wire_gbps,
      static_cast<long long>(measured->wire_bytes), measured->seconds);
  if (record != nullptr) {
    record->SetMeta("transport", args.transport);
    record->Append("socket_payload_gbps", measured->payload_gbps);
    record->Append("socket_wire_gbps", measured->wire_gbps);
  }
  return measured->payload_gbps;
}

}  // namespace poseidon

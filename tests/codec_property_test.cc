// Property tests for the wire-codec registry: random tensors through each
// Codec's encode -> wire -> decode, checking bit-exactness (raw floats), the
// error-feedback residual invariant and reference-decoder equality (1-bit),
// and exact rank-k reconstruction (sufficient factors) — plus fuzzed
// truncated/corrupt frames, which must come back as Status, never a crash.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/ops.h"
#include "src/transport/codec.h"

namespace poseidon {
namespace {

// Models the wire hop: the receiver sees the same words in a different
// slab (a batched frame is memcpy'd by the NIC, never reinterpreted).
PayloadView Transit(const Payload& frame, Payload* storage) {
  *storage = Payload::Allocate(frame.size());
  std::memcpy(storage->data(), frame.data(),
              static_cast<size_t>(frame.size()) * sizeof(float));
  return storage->View();
}

// ------------------------------------------------------------- raw floats --

TEST(CodecPropertyTest, RawFloatRoundTripIsBitExact) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = 1 + static_cast<int64_t>(rng.NextDouble() * 300);
    Tensor values = Tensor::RandomUniform({n}, -10.0f, 10.0f, rng);
    Payload frame = RawFloatCodec::Encode(values.data(), n);
    Payload wire;
    const PayloadView view = Transit(frame, &wire);

    Tensor decoded;
    const Status status = CodecRegistry::Get(WireCodec::kRawFloat).Decode(view, &decoded,
                                                                          nullptr);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(decoded.size(), n);
    EXPECT_DOUBLE_EQ(MaxAbsDiff(values.Reshaped({n}), decoded), 0.0);
  }
}

// ------------------------------------------------------------------- 1-bit --

TEST(CodecPropertyTest, OneBitMatchesReferenceDecoderBitwise) {
  Rng rng(202);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t rows = 1 + static_cast<int64_t>(rng.NextDouble() * 40);
    const int64_t cols = 1 + static_cast<int64_t>(rng.NextDouble() * 40);
    Tensor grad = Tensor::RandomUniform({rows, cols}, -1.0f, 1.0f, rng);

    OneBitQuantizer through_codec;
    OneBitQuantizer reference;
    Payload frame = OneBitCodec::Encode(grad, &through_codec, nullptr, 0);
    const Tensor want = OneBitQuantizer::Decode(reference.Encode(grad));

    Payload wire;
    Tensor got;
    const Status status = OneBitCodec::DecodeDense(Transit(frame, &wire), &got);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_DOUBLE_EQ(MaxAbsDiff(want, got), 0.0)
        << "codec decode must be bitwise identical to OneBitQuantizer::Decode";
    // Both quantizers saw the same input: identical residuals.
    EXPECT_DOUBLE_EQ(MaxAbsDiff(through_codec.residual(), reference.residual()), 0.0);
  }
}

TEST(CodecPropertyTest, OneBitResidualInvariantHoldsAcrossTheWire) {
  // Error feedback: Decode(frame) + residual' == gradient + residual.
  Rng rng(203);
  Tensor grad = Tensor::RandomUniform({16, 24}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  Payload frame = OneBitCodec::Encode(grad, &quantizer, nullptr, 0);
  Payload wire;
  Tensor decoded;
  ASSERT_TRUE(OneBitCodec::DecodeDense(Transit(frame, &wire), &decoded).ok());
  for (int64_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(decoded[i] + quantizer.residual()[i], grad[i], 1e-6);
  }
}

TEST(CodecPropertyTest, OneBitBiasRidesInFrame) {
  Rng rng(204);
  Tensor grad = Tensor::RandomUniform({8, 6}, -1.0f, 1.0f, rng);
  const std::vector<float> bias = {0.5f, -1.25f, 3.0f, 0.0f, -7.5f, 2.25f, 1.0f, -0.5f};
  OneBitQuantizer quantizer;
  Payload frame = OneBitCodec::Encode(grad, &quantizer, bias.data(),
                                      static_cast<int64_t>(bias.size()));
  Payload wire;
  Tensor dense;
  std::vector<float> decoded_bias;
  const Status status = CodecRegistry::Get(WireCodec::kOneBit)
                            .Decode(Transit(frame, &wire), &dense, &decoded_bias);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded_bias, bias);
}

// ------------------------------------------------------ sufficient factors --

TEST(CodecPropertyTest, SufficientFactorReconstructionIsExact) {
  Rng rng(303);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t k = 1 + static_cast<int64_t>(rng.NextDouble() * 16);
    const int64_t m = 1 + static_cast<int64_t>(rng.NextDouble() * 30);
    const int64_t n = 1 + static_cast<int64_t>(rng.NextDouble() * 30);
    Tensor errors = Tensor::RandomUniform({k, m}, -1.0f, 1.0f, rng);
    Tensor inputs = Tensor::RandomUniform({k, n}, -1.0f, 1.0f, rng);
    const SufficientFactors factors = MakeSufficientFactors(errors, inputs);

    Tensor want({m, n});
    ReconstructGradient(factors, &want);

    Payload frame = SufficientFactorCodec::Encode(factors, nullptr, 0);
    Payload wire;
    Tensor got({m, n});
    const Status status =
        SufficientFactorCodec::DecodeReconstruct(Transit(frame, &wire), &got);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_DOUBLE_EQ(MaxAbsDiff(want, got), 0.0)
        << "frame reconstruction must be bitwise identical to ReconstructGradient";
  }
}

TEST(CodecPropertyTest, SufficientFactorRankOne) {
  Tensor errors = Tensor::FromVector({1, 2}, {2, 3});
  Tensor inputs = Tensor::FromVector({1, 3}, {1, 10, 100});
  Payload frame =
      SufficientFactorCodec::Encode(MakeSufficientFactors(errors, inputs), nullptr, 0);
  Tensor recon({2, 3});
  ASSERT_TRUE(SufficientFactorCodec::DecodeReconstruct(frame.View(), &recon).ok());
  EXPECT_FLOAT_EQ(recon.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(recon.At(0, 2), 200.0f);
  EXPECT_FLOAT_EQ(recon.At(1, 1), 30.0f);
}

// ------------------------------------------------------------------ fuzzing --

// Every truncation of a valid frame must fail with a Status, never crash.
void ExpectAllTruncationsFail(const Codec& codec, const Payload& frame) {
  for (int64_t len = 0; len < frame.size(); ++len) {
    const PayloadView truncated = frame.View(0, len);
    const StatusOr<int64_t> validated = codec.Validate(truncated);
    EXPECT_FALSE(validated.ok()) << codec.name() << " accepted a frame truncated to "
                                 << len << "/" << frame.size() << " words";
    Tensor dense;
    std::vector<float> bias;
    EXPECT_FALSE(codec.Decode(truncated, &dense, &bias).ok());
  }
}

TEST(CodecPropertyTest, TruncatedOneBitFramesReturnStatus) {
  Rng rng(404);
  Tensor grad = Tensor::RandomUniform({5, 9}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  const std::vector<float> bias = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  Payload frame = OneBitCodec::Encode(grad, &quantizer, bias.data(), 5);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kOneBit), frame);
}

TEST(CodecPropertyTest, TruncatedSufficientFactorFramesReturnStatus) {
  Rng rng(405);
  Tensor errors = Tensor::RandomUniform({4, 7}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({4, 11}, -1.0f, 1.0f, rng);
  Payload frame = SufficientFactorCodec::Encode(MakeSufficientFactors(errors, inputs),
                                                nullptr, 0);
  ExpectAllTruncationsFail(CodecRegistry::Get(WireCodec::kSufficientFactor), frame);
}

TEST(CodecPropertyTest, FuzzedHeadersNeverCrash) {
  // Random junk words as frames: decode must either succeed (self-consistent
  // junk) or return a Status; it must never abort or read out of bounds.
  Rng rng(506);
  for (WireCodec id : CodecRegistry::Ids()) {
    const Codec& codec = CodecRegistry::Get(id);
    for (int trial = 0; trial < 200; ++trial) {
      const int64_t words = static_cast<int64_t>(rng.NextDouble() * 64);
      Payload junk = Payload::Allocate(words);
      for (int64_t i = 0; i < words; ++i) {
        const uint32_t bits = static_cast<uint32_t>(rng.NextDouble() * 4294967295.0);
        std::memcpy(junk.data() + i, &bits, sizeof(bits));
      }
      const StatusOr<int64_t> validated = codec.Validate(junk.View());
      Tensor dense;
      std::vector<float> bias;
      const Status decoded = codec.Decode(junk.View(), &dense, &bias);
      EXPECT_EQ(validated.ok(), decoded.ok())
          << codec.name() << ": Validate and Decode must agree on fuzzed input";
    }
  }
}

TEST(CodecPropertyTest, NegativeDimensionsAreRejected) {
  Payload frame = Payload::Allocate(8);
  const uint32_t negative = 0x80000001u;  // -2147483647 as int32
  std::memcpy(frame.data(), &negative, sizeof(negative));
  Tensor dense;
  EXPECT_FALSE(OneBitCodec::DecodeDense(frame.View(), &dense).ok());
  Tensor out({1, 1});
  EXPECT_FALSE(SufficientFactorCodec::DecodeReconstruct(frame.View(), &out).ok());
}

// ------------------------------------------------------------------ registry --

TEST(CodecPropertyTest, RegistryServesAllBuiltins) {
  const std::vector<WireCodec> ids = CodecRegistry::Ids();
  ASSERT_GE(ids.size(), 3u);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kRawFloat).id(), WireCodec::kRawFloat);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kOneBit).id(), WireCodec::kOneBit);
  EXPECT_EQ(CodecRegistry::Get(WireCodec::kSufficientFactor).id(),
            WireCodec::kSufficientFactor);
  EXPECT_EQ(CodecRegistry::Find(static_cast<WireCodec>(200)), nullptr);
}

}  // namespace
}  // namespace poseidon

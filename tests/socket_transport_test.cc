// The socket transport, tested at two levels in one process:
//
//  1. Transport-level pairs (tests/testing/socket_pair.h): two MessageBus +
//     SocketTransport instances over real loopback TCP / Unix sockets —
//     control records, data-path field and payload fidelity, receiver-side
//     send_ns restamping, record counters, Flush semantics, and the PR-4
//     sequencer properties (dedup, in-order release, retransmit-on-drop)
//     under the record-level lossy shim.
//
//  2. Cluster-level conformance: a full worker/server/shard cluster whose
//     members run as threads but talk exclusively over sockets
//     (tests/testing/socket_cluster.h) must follow a bitwise-identical
//     parameter trajectory to the in-process CaptureTrajectory oracle, for
//     BSP and for sharded SSP s=0, clean and under socket weather.
//
// True fork/exec clusters are covered by tests/multiprocess_trajectory_test.cc
// through tools/poseidon_launch.
#include "src/transport/socket_transport.h"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/transport/bus.h"
#include "src/transport/codec.h"
#include "src/transport/wire_format.h"
#include "tests/testing/harness.h"
#include "tests/testing/socket_cluster.h"
#include "tests/testing/socket_pair.h"

namespace poseidon {
namespace {

using testing::CaptureTrajectory;
using testing::ControlEvent;
using testing::RunSocketCluster;
using testing::SeedTrace;
using testing::SmallTrainerOptions;
using testing::SocketBusPair;
using testing::SocketClusterOptions;
using testing::SocketClusterRun;
using testing::Trajectory;

// A deterministic raw-float data message, node 0 -> node 1.
Message MakeDataMessage(int64_t iter) {
  Message m;
  m.type = MessageType::kGradPush;
  m.codec = WireCodec::kRawFloat;
  m.from = Address{0, kSyncerPortBase + 1};
  m.to = Address{1, kServerPort};
  m.layer = 1;
  m.worker = 0;
  m.iter = iter;
  std::vector<float> values;
  for (int i = 0; i < 5; ++i) {
    values.push_back(static_cast<float>(iter) + static_cast<float>(i) * 0.5f);
  }
  Payload slab = RawFloatCodec::Encode(values.data(),
                                       static_cast<int64_t>(values.size()));
  m.chunks.push_back(WireChunk{iter * 8, slab.View()});
  return m;
}

// --------------------------------------------------- transport-level tests --

TEST(SocketTransportTest, ControlRecordsIncludingSelfDelivery) {
  SocketBusPair pair(/*unix_sockets=*/false);
  ASSERT_TRUE(pair.transport(0).SendControl(1, 41, {1, 2, 3}).ok());
  ASSERT_TRUE(pair.transport(1).SendControl(0, 42).ok());
  // To self: delivered inline, no socket round trip.
  ASSERT_TRUE(pair.transport(0).SendControl(0, 43, {9}).ok());

  ASSERT_TRUE(pair.AwaitControl(1, 1));
  ASSERT_TRUE(pair.AwaitControl(0, 2));
  const auto at1 = pair.control(1);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1[0].src, 0);
  EXPECT_EQ(at1[0].opcode, 41);
  EXPECT_EQ(at1[0].body, (std::vector<uint8_t>{1, 2, 3}));
  for (const ControlEvent& event : pair.control(0)) {
    if (event.opcode == 42) {
      EXPECT_EQ(event.src, 1);
      EXPECT_TRUE(event.body.empty());
    } else {
      EXPECT_EQ(event.opcode, 43);
      EXPECT_EQ(event.src, 0);
      EXPECT_EQ(event.body, std::vector<uint8_t>{9});
    }
  }
}

TEST(SocketTransportTest, DataPathPreservesEveryFieldAndPayloadBit) {
  SocketBusPair pair(/*unix_sockets=*/false);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});

  const Message sent = MakeDataMessage(3);
  ASSERT_TRUE(pair.bus(0).Send(sent).ok());

  std::optional<Message> got = mailbox->Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(static_cast<int>(got->type), static_cast<int>(sent.type));
  EXPECT_EQ(static_cast<int>(got->codec), static_cast<int>(sent.codec));
  EXPECT_TRUE(got->from == sent.from);
  EXPECT_TRUE(got->to == sent.to);
  EXPECT_EQ(got->layer, sent.layer);
  EXPECT_EQ(got->worker, sent.worker);
  EXPECT_EQ(got->iter, sent.iter);
  EXPECT_EQ(got->step, sent.step);
  EXPECT_EQ(got->seq, 0) << "first message of the stream";
  ASSERT_EQ(got->chunks.size(), sent.chunks.size());
  EXPECT_EQ(got->chunks[0].offset, sent.chunks[0].offset);
  ASSERT_EQ(got->chunks[0].view.size(), sent.chunks[0].view.size());
  EXPECT_EQ(std::memcmp(got->chunks[0].view.data(), sent.chunks[0].view.data(),
                        static_cast<size_t>(sent.chunks[0].view.size()) * 4),
            0);
  // Without receiver-side link stats the stamp stays zero: a sender stamp
  // must never leak across (steady clocks of two processes are unrelated).
  EXPECT_EQ(got->send_ns, 0);

  EXPECT_GE(pair.transport(0).records_sent(), 1);
  EXPECT_GE(pair.transport(1).records_received(), 1);
  EXPECT_GE(pair.transport(0).bytes_sent(),
            sent.WireBytes() + kSocketRecordHeaderBytes);
  EXPECT_EQ(pair.transport(1).bytes_received(), pair.transport(0).bytes_sent());
}

TEST(SocketTransportTest, SendNsIsRestampedOnTheReceiversClock) {
  SocketBusPair pair(/*unix_sockets=*/false);
  pair.bus(1).EnableLinkStats();
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});
  ASSERT_TRUE(pair.bus(0).Send(MakeDataMessage(0)).ok());
  std::optional<Message> got = mailbox->Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_GT(got->send_ns, 0)
      << "ingress must restamp so latency is measured on one clock";
}

TEST(SocketTransportTest, UnixSocketsCarryTheSameFrames) {
  SocketBusPair pair(/*unix_sockets=*/true);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});
  for (int64_t iter = 0; iter < 4; ++iter) {
    ASSERT_TRUE(pair.bus(0).Send(MakeDataMessage(iter)).ok());
  }
  for (int64_t iter = 0; iter < 4; ++iter) {
    std::optional<Message> got = mailbox->Pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->iter, iter) << "per-stream FIFO over AF_UNIX";
    EXPECT_EQ(got->seq, iter);
  }
}

TEST(SocketTransportTest, ShutdownRidesUnsequenced) {
  SocketBusPair pair(/*unix_sockets=*/false);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});
  Message m = MakeDataMessage(0);
  m.type = MessageType::kShutdown;
  m.chunks.clear();
  ASSERT_TRUE(pair.bus(0).Send(m).ok());
  std::optional<Message> got = mailbox->Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(static_cast<int>(got->type),
            static_cast<int>(MessageType::kShutdown));
  EXPECT_EQ(got->seq, -1) << "kShutdown is exempt from wire sequencing";
}

TEST(SocketTransportTest, LossyShimDeliversExactlyOnceInOrder) {
  // Real socket chaos: the shim drops (with retransmit), duplicates and
  // delays egress records. The receiving bus's reorder buffer must hand the
  // consumer every message exactly once, in stream order — the PR-4
  // sequencer properties over genuine socket weather.
  constexpr int kMessages = 300;
  FaultPlan shim;
  shim.seed = 7;
  shim.drop_prob = 0.15;
  shim.duplicate_prob = 0.10;
  shim.delay_prob = 0.20;
  SocketBusPair pair(/*unix_sockets=*/false, shim);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});

  for (int64_t iter = 0; iter < kMessages; ++iter) {
    ASSERT_TRUE(pair.bus(0).Send(MakeDataMessage(iter)).ok());
  }
  for (int64_t iter = 0; iter < kMessages; ++iter) {
    std::optional<Message> got = mailbox->Pop();
    ASSERT_TRUE(got.has_value()) << "lost message " << iter;
    EXPECT_EQ(got->iter, iter) << "released out of order";
    EXPECT_EQ(got->seq, iter);
    ASSERT_EQ(got->chunks.size(), 1u);
    const Message want = MakeDataMessage(iter);
    ASSERT_EQ(got->chunks[0].view.size(), want.chunks[0].view.size());
    EXPECT_EQ(std::memcmp(got->chunks[0].view.data(),
                          want.chunks[0].view.data(),
                          static_cast<size_t>(want.chunks[0].view.size()) * 4),
              0);
  }
  // Counter assertions only after a stream barrier: late duplicates and
  // retransmitted copies must have been processed by the receiver first.
  pair.Barrier(0, 1);

  const FaultCountersSnapshot shim_counters = pair.transport(0).ShimCounters();
  EXPECT_GT(shim_counters.drops, 0) << "shim never dropped — test is vacuous";
  EXPECT_GE(shim_counters.retransmits, shim_counters.drops)
      << "every dropped record must be retransmitted";
  EXPECT_GT(shim_counters.duplicates, 0);
  EXPECT_GT(shim_counters.delays, 0);
  const FaultCountersSnapshot wire = pair.bus(1).WireCounters();
  EXPECT_GT(wire.deduped, 0)
      << "duplicated records must be swallowed by the reorder buffer";
  EXPECT_FALSE(mailbox->TryPop().has_value()) << "a duplicate leaked through";
}

TEST(SocketTransportTest, MalformedDataRecordDoesNotCrashTheReceiver) {
  // A data record whose body is not a valid frame must surface as a Status
  // inside the poll thread (logged, connection preserved for the sender's
  // next valid record), never a crash. We can't inject raw bytes through the
  // public API, so exercise the bus half directly: DeliverWire on garbage.
  SocketBusPair pair(/*unix_sockets=*/false);
  const std::vector<uint8_t> garbage(48, 0xEE);
  EXPECT_FALSE(
      pair.bus(1)
          .DeliverWire(garbage.data(), static_cast<int64_t>(garbage.size()))
          .ok());
}

// ---------------------------------------------- cluster-level conformance --

// Exact-trajectory comparison with a payload that explains the divergence.
void ExpectSameTrajectory(const Trajectory& got, const Trajectory& want) {
  ASSERT_EQ(got.mean_losses.size(), want.mean_losses.size());
  for (size_t i = 0; i < want.mean_losses.size(); ++i) {
    EXPECT_EQ(got.mean_losses[i], want.mean_losses[i])
        << "mean loss diverged at iteration " << i;
  }
  ASSERT_EQ(got.final_params.size(), want.final_params.size());
  int mismatches = 0;
  for (size_t i = 0; i < want.final_params.size(); ++i) {
    if (std::memcmp(&got.final_params[i], &want.final_params[i], 4) != 0) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0) << "final parameters differ in " << mismatches
                           << " of " << want.final_params.size() << " floats";
}

Trajectory Oracle(const SocketClusterOptions& options) {
  return CaptureTrajectory(
      SmallTrainerOptions(options.workers, options.servers, options.shards,
                          options.staleness, options.policy),
      options.iterations, options.hidden_layers);
}

TEST(SocketClusterConformanceTest, TcpBspMatchesInProcessTrajectoryBitwise) {
  SocketClusterOptions options;  // 2 workers, 2 servers, 2 shards, BSP dense
  const SocketClusterRun run = RunSocketCluster(options);
  ExpectSameTrajectory(run.trajectory, Oracle(options));
}

TEST(SocketClusterConformanceTest, ShardedSspS0MatchesInProcessTrajectory) {
  SocketClusterOptions options;
  options.shards = 4;
  options.staleness = 0;  // SSP with s=0 must stay bitwise BSP
  const SocketClusterRun run = RunSocketCluster(options);
  ExpectSameTrajectory(run.trajectory, Oracle(options));
}

TEST(SocketClusterConformanceTest, UnixColocatedClusterMatchesTrajectory) {
  SocketClusterOptions options;
  options.unix_sockets = true;
  options.colocate = true;  // worker n and server n share bus node n
  const SocketClusterRun run = RunSocketCluster(options);
  ExpectSameTrajectory(run.trajectory, Oracle(options));
}

TEST(SocketClusterConformanceTest, BatchedEgressMatchesTrajectory) {
  SocketClusterOptions options;
  options.batch_egress = true;  // PR-3 batcher cutting real batch frames
  const SocketClusterRun run = RunSocketCluster(options);
  ExpectSameTrajectory(run.trajectory, Oracle(options));
}

TEST(SocketClusterConformanceTest, SocketWeatherNeverChangesTheTrajectory) {
  // The paper's determinism claim over a lossy wire: drops, duplicates and
  // delays at the record layer must be invisible to training.
  SocketClusterOptions clean;
  const Trajectory oracle = Oracle(clean);
  for (uint64_t seed : testing::ChaosSeeds(2)) {
    SCOPED_TRACE(SeedTrace(seed));
    SocketClusterOptions lossy = clean;
    lossy.shim.seed = seed;
    lossy.shim.drop_prob = 0.05;
    lossy.shim.duplicate_prob = 0.05;
    lossy.shim.delay_prob = 0.10;
    const SocketClusterRun run = RunSocketCluster(lossy);
    ExpectSameTrajectory(run.trajectory, oracle);
    EXPECT_GT(run.shim.drops + run.shim.duplicates + run.shim.delays, 0)
        << "no weather was injected — the lossy run proved nothing";
    EXPECT_GE(run.shim.retransmits, run.shim.drops);
  }
}

}  // namespace
}  // namespace poseidon

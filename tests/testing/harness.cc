#include "tests/testing/harness.h"

#include <cstdlib>

#include "src/common/rng.h"
#include "src/poseidon/workloads.h"

namespace poseidon {
namespace testing {

// The canonical workload definitions moved to src/poseidon/workloads.{h,cc}
// so tools/poseidon_launch trains the exact model the in-process oracle
// trains; the harness keeps its historical entry points as delegates.
SyntheticDataset TinyDataset() { return workloads::TinyDataset(); }

NetworkFactory TinyMlpFactory(int hidden_layers) {
  return workloads::TinyMlpFactory(hidden_layers);
}

TrainerOptions SmallTrainerOptions(int workers, int servers, int shards, int staleness,
                                   FcSyncPolicy policy) {
  return workloads::SmallTrainerOptions(workers, servers, shards, staleness, policy);
}

ClusterInfo SmallClusterInfo(int workers, int servers, int batch, int64_t kv_bytes) {
  ClusterInfo cluster;
  cluster.num_workers = workers;
  cluster.num_servers = servers;
  cluster.batch_per_worker = batch;
  cluster.kv_pair_bytes = kv_bytes;
  return cluster;
}

std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

Trajectory CaptureTrajectory(const TrainerOptions& options, int iterations,
                             int hidden_layers) {
  const SyntheticDataset dataset = TinyDataset();
  PoseidonTrainer trainer(TinyMlpFactory(hidden_layers), options);
  Trajectory trajectory;
  for (const IterationStats& stats : trainer.Train(dataset, iterations)) {
    trajectory.mean_losses.push_back(stats.mean_loss);
  }
  trainer.bus().FlushEgress();
  trainer.bus().FlushFaults();
  trajectory.final_params = AllParams(trainer.worker_net(0));
  if (trainer.bus().fault_injector() != nullptr) {
    trajectory.faults = trainer.bus().fault_injector()->Counters();
  }
  return trajectory;
}

std::vector<uint64_t> ChaosSeeds(int count) {
  uint64_t base = 1;
  if (const char* env = std::getenv("POSEIDON_CHAOS_SEED")) {
    base = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
    if (base == 0) {
      base = 1;
    }
  }
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Spread the bases out so consecutive CI shards never overlap seeds.
    seeds.push_back(base * 1000 + static_cast<uint64_t>(i));
  }
  return seeds;
}

std::string SeedTrace(uint64_t seed) {
  return "chaos seed " + std::to_string(seed) +
         " (reproduce with POSEIDON_CHAOS_SEED and this test filter)";
}

}  // namespace testing
}  // namespace poseidon

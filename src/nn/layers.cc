#include "src/nn/layers.h"

#include <algorithm>

#include "src/tensor/ops.h"

namespace poseidon {
namespace {

// Flattens [K,C,H,W] (or passes through [K,N]) into a [K, features] view.
Tensor FlattenBatch(const Tensor& in) {
  if (in.ndim() == 2) {
    return in;
  }
  CHECK_EQ(in.ndim(), 4);
  const int64_t k = in.dim(0);
  const int64_t features = in.size() / k;
  return in.Reshaped({k, features});
}

}  // namespace

// ------------------------------------------------------------------- FC ----

FullyConnectedLayer::FullyConnectedLayer(std::string name, int64_t m, int64_t n, Rng& rng)
    : Layer(std::move(name)),
      m_(m),
      n_(n),
      weight_(Tensor::RandomHe({m, n}, n, rng)),
      bias_(Tensor::Zeros({m})),
      weight_grad_(Tensor::Zeros({m, n})),
      bias_grad_(Tensor::Zeros({m})) {}

void FullyConnectedLayer::Forward(const Tensor& in, Tensor* out) {
  last_in_shape_ = in.shape();
  last_input_ = FlattenBatch(in);
  CHECK_EQ(last_input_.dim(1), n_) << name() << ": input width mismatch";
  const int64_t k = last_input_.dim(0);
  *out = Tensor({k, m_});
  // out[K,M] = x[K,N] * W^T[N,M]
  GemmTransB(last_input_, weight_, out);
  AddRowVector(bias_, out);
}

void FullyConnectedLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CHECK_EQ(grad_out.ndim(), 2);
  CHECK_EQ(grad_out.dim(1), m_);
  last_errors_ = grad_out;
  // dW[M,N] = dY^T[M,K] * X[K,N]
  GemmTransA(grad_out, last_input_, &weight_grad_);
  SumRows(grad_out, &bias_grad_);
  // dX[K,N] = dY[K,M] * W[M,N], delivered in the caller's original shape so
  // conv/pool layers below see their 4-D layout.
  Tensor grad_flat({grad_out.dim(0), n_});
  Gemm(grad_out, weight_, &grad_flat);
  *grad_in = grad_flat.Reshaped(last_in_shape_);
}

std::vector<ParamBlock> FullyConnectedLayer::Params() {
  return {{name() + ".weight", &weight_, &weight_grad_},
          {name() + ".bias", &bias_, &bias_grad_}};
}

SufficientFactors FullyConnectedLayer::LastSufficientFactors() const {
  CHECK_GT(last_errors_.size(), 0) << "Backward must run before SF extraction";
  return MakeSufficientFactors(last_errors_, last_input_);
}

// ----------------------------------------------------------------- Conv ----

Conv2dLayer::Conv2dLayer(std::string name, int64_t in_c, int64_t out_c, int64_t kernel,
                         int64_t stride, int64_t pad, Rng& rng)
    : Layer(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor::RandomHe({out_c, in_c * kernel * kernel}, in_c * kernel * kernel, rng)),
      bias_(Tensor::Zeros({out_c})),
      weight_grad_(Tensor::Zeros({out_c, in_c * kernel * kernel})),
      bias_grad_(Tensor::Zeros({out_c})) {
  CHECK_GT(stride_, 0);
  CHECK_GE(pad_, 0);
}

void Conv2dLayer::Im2Col(const Tensor& in, Tensor* cols) const {
  const int64_t k = in.dim(0);
  const int64_t h = in.dim(2);
  const int64_t w = in.dim(3);
  const int64_t oh = OutDim(h);
  const int64_t ow = OutDim(w);
  const int64_t patch = in_c_ * kernel_ * kernel_;
  *cols = Tensor({k * oh * ow, patch});
  float* col_data = cols->data();
  for (int64_t img = 0; img < k; ++img) {
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t x = 0; x < ow; ++x) {
        float* row = col_data + ((img * oh + y) * ow + x) * patch;
        int64_t idx = 0;
        for (int64_t c = 0; c < in_c_; ++c) {
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t sy = y * stride_ + ky - pad_;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t sx = x * stride_ + kx - pad_;
              row[idx++] = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                               ? in.At4(img, c, sy, sx)
                               : 0.0f;
            }
          }
        }
      }
    }
  }
}

void Conv2dLayer::Col2Im(const Tensor& cols, Tensor* grad_in) const {
  const int64_t k = last_in_shape_[0];
  const int64_t h = last_in_shape_[2];
  const int64_t w = last_in_shape_[3];
  const int64_t oh = OutDim(h);
  const int64_t ow = OutDim(w);
  const int64_t patch = in_c_ * kernel_ * kernel_;
  *grad_in = Tensor(last_in_shape_);
  const float* col_data = cols.data();
  for (int64_t img = 0; img < k; ++img) {
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t x = 0; x < ow; ++x) {
        const float* row = col_data + ((img * oh + y) * ow + x) * patch;
        int64_t idx = 0;
        for (int64_t c = 0; c < in_c_; ++c) {
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t sy = y * stride_ + ky - pad_;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t sx = x * stride_ + kx - pad_;
              if (sy >= 0 && sy < h && sx >= 0 && sx < w) {
                grad_in->At4(img, c, sy, sx) += row[idx];
              }
              ++idx;
            }
          }
        }
      }
    }
  }
}

void Conv2dLayer::Forward(const Tensor& in, Tensor* out) {
  CHECK_EQ(in.ndim(), 4);
  CHECK_EQ(in.dim(1), in_c_) << name() << ": channel mismatch";
  last_in_shape_ = in.shape();
  const int64_t k = in.dim(0);
  const int64_t oh = OutDim(in.dim(2));
  const int64_t ow = OutDim(in.dim(3));
  CHECK_GT(oh, 0);
  CHECK_GT(ow, 0);

  Im2Col(in, &last_cols_);
  // [K*OH*OW, patch] x [patch, out_c] -> [K*OH*OW, out_c]
  Tensor result({k * oh * ow, out_c_});
  GemmTransB(last_cols_, weight_, &result);

  *out = Tensor({k, out_c_, oh, ow});
  for (int64_t img = 0; img < k; ++img) {
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t x = 0; x < ow; ++x) {
        const float* row = result.data() + ((img * oh + y) * ow + x) * out_c_;
        for (int64_t c = 0; c < out_c_; ++c) {
          out->At4(img, c, y, x) = row[c] + bias_[c];
        }
      }
    }
  }
}

void Conv2dLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CHECK_EQ(grad_out.ndim(), 4);
  const int64_t k = grad_out.dim(0);
  const int64_t oh = grad_out.dim(2);
  const int64_t ow = grad_out.dim(3);

  // Rearrange dY to [K*OH*OW, out_c] to match the im2col layout.
  Tensor dy({k * oh * ow, out_c_});
  bias_grad_.SetZero();
  for (int64_t img = 0; img < k; ++img) {
    for (int64_t c = 0; c < out_c_; ++c) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          const float g = grad_out.At4(img, c, y, x);
          dy.At((img * oh + y) * ow + x, c) = g;
          bias_grad_[c] += g;
        }
      }
    }
  }
  // dW[out_c, patch] = dY^T x cols
  GemmTransA(dy, last_cols_, &weight_grad_);
  // dCols = dY x W
  Tensor dcols({k * oh * ow, in_c_ * kernel_ * kernel_});
  Gemm(dy, weight_, &dcols);
  Col2Im(dcols, grad_in);
}

std::vector<ParamBlock> Conv2dLayer::Params() {
  return {{name() + ".weight", &weight_, &weight_grad_},
          {name() + ".bias", &bias_, &bias_grad_}};
}

// ----------------------------------------------------------------- ReLU ----

void ReluLayer::Forward(const Tensor& in, Tensor* out) {
  *out = in;
  mask_ = Tensor(in.shape());
  float* od = out->data();
  float* md = mask_.data();
  for (int64_t i = 0; i < in.size(); ++i) {
    if (od[i] > 0.0f) {
      md[i] = 1.0f;
    } else {
      od[i] = 0.0f;
      md[i] = 0.0f;
    }
  }
}

void ReluLayer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CHECK(grad_out.SameShape(mask_));
  *grad_in = grad_out;
  float* gd = grad_in->data();
  const float* md = mask_.data();
  for (int64_t i = 0; i < grad_in->size(); ++i) {
    gd[i] *= md[i];
  }
}

// ------------------------------------------------------------- MaxPool -----

void MaxPool2Layer::Forward(const Tensor& in, Tensor* out) {
  CHECK_EQ(in.ndim(), 4);
  CHECK_EQ(in.dim(2) % 2, 0) << name() << ": spatial dims must be even";
  CHECK_EQ(in.dim(3) % 2, 0);
  last_in_shape_ = in.shape();
  const int64_t k = in.dim(0);
  const int64_t c = in.dim(1);
  const int64_t oh = in.dim(2) / 2;
  const int64_t ow = in.dim(3) / 2;
  *out = Tensor({k, c, oh, ow});
  argmax_ = Tensor({k, c, oh, ow});
  for (int64_t img = 0; img < k; ++img) {
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          float best = -3.4e38f;
          int64_t best_idx = 0;
          for (int64_t dy = 0; dy < 2; ++dy) {
            for (int64_t dx = 0; dx < 2; ++dx) {
              const int64_t sy = 2 * y + dy;
              const int64_t sx = 2 * x + dx;
              const float v = in.At4(img, ch, sy, sx);
              if (v > best) {
                best = v;
                best_idx = ((img * c + ch) * in.dim(2) + sy) * in.dim(3) + sx;
              }
            }
          }
          out->At4(img, ch, y, x) = best;
          argmax_.At4(img, ch, y, x) = static_cast<float>(best_idx);
        }
      }
    }
  }
}

void MaxPool2Layer::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CHECK(grad_out.SameShape(argmax_));
  *grad_in = Tensor(last_in_shape_);
  const float* gd = grad_out.data();
  const float* am = argmax_.data();
  for (int64_t i = 0; i < grad_out.size(); ++i) {
    (*grad_in)[static_cast<int64_t>(am[i])] += gd[i];
  }
}

// ------------------------------------------------------------ Residual -----

ResidualBlock::ResidualBlock(std::string name, std::vector<std::unique_ptr<Layer>> inner)
    : Layer(std::move(name)), inner_(std::move(inner)) {
  CHECK(!inner_.empty());
}

void ResidualBlock::Forward(const Tensor& in, Tensor* out) {
  activations_.clear();
  activations_.push_back(in);
  Tensor current = in;
  for (auto& layer : inner_) {
    Tensor next;
    layer->Forward(current, &next);
    current = std::move(next);
    activations_.push_back(current);
  }
  CHECK(current.SameShape(in)) << name() << ": residual branch must preserve shape";
  *out = std::move(current);
  Axpy(1.0f, in, out);  // skip connection
}

void ResidualBlock::Backward(const Tensor& grad_out, Tensor* grad_in) {
  Tensor current = grad_out;
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it) {
    Tensor next;
    (*it)->Backward(current, &next);
    current = std::move(next);
  }
  *grad_in = std::move(current);
  Axpy(1.0f, grad_out, grad_in);  // gradient through the skip connection
}

std::vector<ParamBlock> ResidualBlock::Params() {
  std::vector<ParamBlock> params;
  for (auto& layer : inner_) {
    for (ParamBlock& p : layer->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

}  // namespace poseidon

// Parameterized invariants over the whole model zoo and the protocol
// simulator: structural sanity of every model, and conservation/sanity
// properties every (system, model) simulation must satisfy.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/cluster/protocol_sim.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

class ZooModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooModelTest, StructuralInvariants) {
  const ModelSpec model = ModelByName(GetParam()).value();
  EXPECT_GT(model.num_layers(), 0);
  std::set<std::string> names;
  for (const LayerSpec& layer : model.layers) {
    EXPECT_GT(layer.params, 0) << layer.name;
    EXPECT_GT(layer.fwd_flops, 0.0) << layer.name;
    EXPECT_TRUE(names.insert(layer.name).second) << "duplicate layer " << layer.name;
    if (layer.type == LayerType::kFC) {
      EXPECT_EQ(layer.params, layer.fc_m * layer.fc_n + layer.fc_m) << layer.name;
      // FC compute is 2MN per sample.
      EXPECT_DOUBLE_EQ(layer.fwd_flops,
                       2.0 * static_cast<double>(layer.fc_m) *
                           static_cast<double>(layer.fc_n))
          << layer.name;
    } else {
      EXPECT_EQ(layer.fc_m, 0) << layer.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::Values("cifar-quick", "alexnet", "googlenet",
                                           "inception-v3", "vgg19", "vgg19-22k",
                                           "resnet-152"));

struct SimCase {
  const char* model;
  int nodes;
};

class SimInvariantTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimInvariantTest, PoseidonSimSanity) {
  const SimCase param = GetParam();
  const ModelSpec model = ModelByName(param.model).value();
  ClusterSpec cluster;
  cluster.num_nodes = param.nodes;
  cluster.nic_gbps = 40.0;
  const SimResult result =
      RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);

  // Speedup bounded by linear (plus epsilon) and strictly positive.
  EXPECT_GT(result.speedup, 0.0);
  EXPECT_LE(result.speedup, param.nodes * 1.001);
  // Iteration cannot beat pure compute.
  EXPECT_GE(result.iter_time_s, result.single_node_iter_s * 0.999);
  // GPU busy fraction is a fraction.
  EXPECT_GT(result.gpu_busy_frac, 0.0);
  EXPECT_LE(result.gpu_busy_frac, 1.0 + 1e-9);
  // Traffic symmetry: on a homogeneous cluster total tx == total rx, and
  // multi-node runs move bytes.
  const double tx = std::accumulate(result.tx_gbits_per_iter.begin(),
                                    result.tx_gbits_per_iter.end(), 0.0);
  const double rx = std::accumulate(result.rx_gbits_per_iter.begin(),
                                    result.rx_gbits_per_iter.end(), 0.0);
  EXPECT_NEAR(tx, rx, 1e-6 + 0.05 * tx);
  if (param.nodes > 1) {
    EXPECT_GT(tx, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(tx, 0.0);
  }
  // Every parameterized layer got a scheme label.
  EXPECT_EQ(result.layer_schemes.size(), static_cast<size_t>(model.num_layers()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimInvariantTest,
    ::testing::Values(SimCase{"googlenet", 1}, SimCase{"googlenet", 8},
                      SimCase{"vgg19", 2}, SimCase{"vgg19", 32},
                      SimCase{"vgg19-22k", 16}, SimCase{"inception-v3", 8},
                      SimCase{"resnet-152", 4}, SimCase{"alexnet", 8},
                      SimCase{"cifar-quick", 4}));

class SystemInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SystemInvariantTest, AllSystemsCompleteAndOrderSanely) {
  const int nodes = GetParam();
  const ModelSpec model = MakeVgg19();
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = 20.0;
  double poseidon_speedup = 0.0;
  for (const SystemConfig& system :
       {CaffePlusPs(), CaffePlusWfbp(), PoseidonSystem(), TfNative(), TfPlusWfbp(),
        AdamSystem(), OneBitSystem(), SfbOnlySystem()}) {
    const SimResult result = RunProtocolSimulation(model, system, cluster, Engine::kCaffe);
    EXPECT_GT(result.speedup, 0.0) << system.name;
    EXPECT_LE(result.speedup, nodes * 1.001) << system.name;
    if (system.name == "Poseidon") {
      poseidon_speedup = result.speedup;
    }
  }
  // Poseidon is the paper's best-of-both: nothing should beat it by more
  // than rounding on this FC-heavy model.
  for (const SystemConfig& system : {CaffePlusPs(), TfNative(), AdamSystem()}) {
    const SimResult result = RunProtocolSimulation(model, system, cluster, Engine::kCaffe);
    EXPECT_LE(result.speedup, poseidon_speedup * 1.01) << system.name;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, SystemInvariantTest, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace poseidon
